package service

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
)

// plant builds a PaperSimPlant inventory with uniform per-node capacity.
func plant(t *testing.T, types, perType int) (*topology.Topology, *inventory.Inventory) {
	t.Helper()
	topo := topology.PaperSimPlant()
	max := make([][]int, topo.Nodes())
	for i := range max {
		max[i] = make([]int, types)
		for j := range max[i] {
			max[i][j] = perType
		}
	}
	inv, err := inventory.NewFromMatrix(max)
	if err != nil {
		t.Fatalf("NewFromMatrix: %v", err)
	}
	return topo, inv
}

func TestServiceBasic(t *testing.T) {
	topo, inv := plant(t, 2, 2)
	svc, err := New(Config{Topology: topo, Inventory: inv, QueueCap: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, err := svc.Place(model.Request{3, 1})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if got := entriesTotal(p.Entries); got != 4 {
		t.Fatalf("placement totals %d VMs, want 4", got)
	}
	// The commit must be visible through the RLock'd snapshot.
	if avail := inv.Available(); avail[0] != 60-3 || avail[1] != 60-1 {
		t.Fatalf("Available = %v after place, want [57 59]", avail)
	}
	if err := svc.Release(p.Entries); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if avail := inv.Available(); avail[0] != 60 || avail[1] != 60 {
		t.Fatalf("Available = %v after release, want [60 60]", avail)
	}
	// Oversized request with the queue disabled: immediate ErrInsufficient.
	if _, err := svc.Place(model.Request{1000, 0}); !errors.Is(err, placement.ErrInsufficient) {
		t.Fatalf("oversized Place err = %v, want ErrInsufficient", err)
	}
	// Releasing something never placed is a hard error, not a panic.
	if err := svc.Release([]affinity.VMEntry{{Node: 0, Type: 0, Count: 1}}); err == nil {
		t.Fatalf("release of unplaced VMs succeeded")
	}
	st := svc.Stats()
	if st.Placed != 1 || st.Released != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want Placed=1 Released=1 Rejected=1", st)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := svc.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close err = %v, want ErrClosed", err)
	}
	if _, err := svc.Place(model.Request{1, 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Place after Close err = %v, want ErrClosed", err)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

func TestServiceConfigErrors(t *testing.T) {
	topo, inv := plant(t, 2, 2)
	if _, err := New(Config{Topology: topo}); err == nil {
		t.Fatalf("New without inventory succeeded")
	}
	if _, err := New(Config{Topology: topo, Inventory: inv, Ordered: true, GlobalOpt: true}); err == nil {
		t.Fatalf("New with Ordered+GlobalOpt succeeded")
	}
	bad := &placement.OnlineHeuristic{Policy: placement.ExhaustiveCenters}
	if _, err := New(Config{Topology: topo, Inventory: inv, Online: bad}); err == nil {
		t.Fatalf("New with non-indexed placer succeeded")
	}
	svc, err := New(Config{Topology: topo, Inventory: inv})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		if err := svc.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if _, err := svc.PlaceAt(0, model.Request{1, 1}); err == nil {
		t.Fatalf("PlaceAt on unordered service succeeded")
	}
	if err := svc.ReleaseAt(0, nil); err == nil {
		t.Fatalf("ReleaseAt on unordered service succeeded")
	}
}

// TestServiceQueueWaits pins the wait-queue integration: a placement that
// does not fit blocks its caller until a release frees capacity, then
// completes with the freed VMs.
func TestServiceQueueWaits(t *testing.T) {
	topo, inv := plant(t, 1, 0)
	// Give only node 0 any capacity so the second cluster cannot fit.
	if err := inv.SetCapacity(0, 0, 4); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	svc, err := New(Config{Topology: topo, Inventory: inv})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	first, err := svc.Place(model.Request{4})
	if err != nil {
		t.Fatalf("first Place: %v", err)
	}
	got := make(chan Placement, 1)
	go func() {
		p, err := svc.Place(model.Request{3})
		if err != nil {
			t.Errorf("queued Place: %v", err)
		}
		got <- p
	}()
	// The second placement must be parked, not answered.
	select {
	case <-got:
		t.Fatalf("queued Place completed before capacity freed")
	case <-time.After(50 * time.Millisecond):
	}
	if st := svc.Stats(); st.Queued != 1 {
		t.Fatalf("stats = %+v, want Queued=1", st)
	}
	if err := svc.Release(first.Entries); err != nil {
		t.Fatalf("Release: %v", err)
	}
	select {
	case p := <-got:
		if entriesTotal(p.Entries) != 3 {
			t.Fatalf("woken placement totals %d VMs, want 3", entriesTotal(p.Entries))
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("queued Place never woke after release")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceCloseFailsWaiters pins shutdown: a placement parked in the
// wait queue is answered with ErrClosed, not leaked.
func TestServiceCloseFailsWaiters(t *testing.T) {
	topo, inv := plant(t, 1, 0)
	if err := inv.SetCapacity(0, 0, 1); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	svc, err := New(Config{Topology: topo, Inventory: inv})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := svc.Place(model.Request{1}); err != nil {
		t.Fatalf("Place: %v", err)
	}
	errC := make(chan error, 1)
	go func() {
		_, err := svc.Place(model.Request{1})
		errC <- err
	}()
	for svc.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errC:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("parked Place err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("parked Place never answered after Close")
	}
}

// TestServiceGlobalOpt drives the batch arm: concurrent placements
// coalesce and are served by the global sub-optimization placer; commits
// and releases still conserve the inventory.
func TestServiceGlobalOpt(t *testing.T) {
	topo, inv := plant(t, 2, 3)
	svc, err := New(Config{
		Topology: topo, Inventory: inv,
		GlobalOpt: true,
		BatchSize: 8,
		MaxWait:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const clients = 16
	var wg sync.WaitGroup
	placements := make([]Placement, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := svc.Place(model.Request{1 + w%3, 2})
			if err != nil {
				t.Errorf("client %d: %v", w, err)
				return
			}
			placements[w] = p
		}(w)
	}
	wg.Wait()
	for w := range placements {
		if want := 3 + w%3; entriesTotal(placements[w].Entries) != want {
			t.Fatalf("client %d placement totals %d VMs, want %d", w, entriesTotal(placements[w].Entries), want)
		}
		if err := svc.Release(placements[w].Entries); err != nil {
			t.Fatalf("release %d: %v", w, err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for j, a := range inv.Available() {
		if a != 30*3 {
			t.Fatalf("Available[%d] = %d after full release, want 90", j, a)
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	if err := inv.TierIndex().CheckConsistent(); err != nil {
		t.Fatalf("tier index: %v", err)
	}
}

// runOrderedTrace serves one seeded trace in Ordered mode with the given
// number of client goroutines and returns a byte serialization of every
// outcome plus the full metrics and trace registries. Phase one places
// seqs [0,n); after a barrier, phase two releases each placement at seq
// n+i. The queue is disabled and the plant sized so every op answers
// immediately — Ordered mode would otherwise let a parked waiter deadlock
// a client that still owes later seqs.
func runOrderedTrace(t *testing.T, workers int, reqs []model.Request) []byte {
	t.Helper()
	topo, inv := plant(t, 3, 8)
	reg := obs.NewRegistry()
	svc, err := New(Config{
		Topology: topo, Inventory: inv,
		Ordered:  true,
		QueueCap: -1,
		// A tiny batch size plus timer flushes maximizes batch-boundary
		// variety across concurrency levels — exactly what the guarantee
		// says must not matter.
		BatchSize: 4,
		MaxWait:   100 * time.Microsecond,
		Obs:       reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n := uint64(len(reqs))
	results := make([]Placement, n)
	resErrs := make([]error, n)
	run := func(phase func(seq uint64)) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for seq := uint64(w); seq < n; seq += uint64(workers) {
					phase(seq)
				}
			}(w)
		}
		wg.Wait()
	}
	run(func(seq uint64) {
		results[seq], resErrs[seq] = svc.PlaceAt(seq, reqs[seq])
	})
	run(func(seq uint64) {
		if resErrs[seq] != nil {
			// A refused placement still owes its release seq so the
			// stream stays contiguous; release nothing under it.
			if err := svc.ReleaseAt(n+seq, nil); err != nil {
				t.Errorf("empty release %d: %v", seq, err)
			}
			return
		}
		if err := svc.ReleaseAt(n+seq, results[seq].Entries); err != nil {
			t.Errorf("release %d: %v", seq, err)
		}
	})
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for j, a := range inv.Available() {
		if a != 30*8 {
			t.Fatalf("Available[%d] = %d after full release, want 240", j, a)
		}
	}
	var buf bytes.Buffer
	for seq := uint64(0); seq < n; seq++ {
		fmt.Fprintf(&buf, "%d err=%v dc=%g center=%d entries=%v\n",
			seq, resErrs[seq], results[seq].DC, results[seq].Center, results[seq].Entries)
	}
	if err := reg.WriteMetricsJSON(&buf); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	if err := reg.WriteTraceJSONL(&buf); err != nil {
		t.Fatalf("WriteTraceJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestOrderedDeterminism is the PR's property test: the same seeded
// request trace served at 1, 8, and 64 client goroutines must produce
// byte-identical allocations, metrics, and event traces. Sequential
// per-request placement depends only on inventory state, which depends
// only on the seq-ordered operation prefix — so batch boundaries, flush
// timing, and client scheduling must all be invisible in the output.
func TestOrderedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4711))
	reqs := make([]model.Request, 96)
	for i := range reqs {
		reqs[i] = model.Request{rng.Intn(3), rng.Intn(3), rng.Intn(3)}
	}
	base := runOrderedTrace(t, 1, reqs)
	for _, workers := range []int{8, 64} {
		got := runOrderedTrace(t, workers, reqs)
		if !bytes.Equal(got, base) {
			t.Fatalf("%d-client run diverged from single-client run:\n--- 1 client ---\n%s\n--- %d clients ---\n%s",
				workers, firstDiff(base, got), workers, firstDiff(got, base))
		}
	}
}

// firstDiff trims two byte serializations to the region around their first
// difference, keeping failure output readable.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hi := i + 160
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}

// TestServiceRaceHammer hammers concurrent Place/Release through the wait
// queue under -race: the apply loop is the inventory's only writer, so the
// RemainingView/TierIndex aliasing that was racy under direct concurrent
// simulator access is now provably clean. Every request fits the empty
// plant, so whenever a placement waits, some other client holds (and will
// release) capacity — the hammer cannot deadlock.
func TestServiceRaceHammer(t *testing.T) {
	topo, inv := plant(t, 2, 2) // 60 slots per type
	svc, err := New(Config{Topology: topo, Inventory: inv, BatchSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const clients = 8
	iters := 50
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9000 + w)))
			for it := 0; it < iters; it++ {
				// Big enough that concurrent clusters contend for the
				// plant and some placements must wait in the queue.
				r := model.Request{5 + rng.Intn(16), 5 + rng.Intn(16)}
				p, err := svc.Place(r)
				if err != nil {
					t.Errorf("client %d iter %d: place %v: %v", w, it, r, err)
					return
				}
				if entriesTotal(p.Entries) != r[0]+r[1] {
					t.Errorf("client %d iter %d: placement totals %d, want %d",
						w, it, entriesTotal(p.Entries), r[0]+r[1])
					return
				}
				if err := svc.Release(p.Entries); err != nil {
					t.Errorf("client %d iter %d: release: %v", w, it, err)
					return
				}
			}
		}(w)
	}
	// Concurrent snapshot readers: only the RLock'd accessors, never the
	// view — the service owns that.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := inv.Remaining()
			for i := range snap {
				for _, v := range snap[i] {
					if v < 0 {
						t.Errorf("negative remaining in snapshot: %v", snap[i])
						return
					}
				}
			}
			_ = svc.Stats()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := svc.Stats()
	if int(st.Placed) != clients*iters || int(st.Released) != clients*iters {
		t.Fatalf("stats = %+v, want %d placed and released", st, clients*iters)
	}
	for j, a := range inv.Available() {
		if a != 60 {
			t.Fatalf("Available[%d] = %d after hammer, want 60", j, a)
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	if err := inv.TierIndex().CheckConsistent(); err != nil {
		t.Fatalf("tier index after hammer: %v", err)
	}
}

func entriesTotal(entries []affinity.VMEntry) int {
	n := 0
	for _, e := range entries {
		n += e.Count
	}
	return n
}
