package inventory

import (
	"errors"
	"math/rand"
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

func tierTestPlant(t *testing.T, rng *rand.Rand) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(topology.DefaultDistances())
	clouds := 1 + rng.Intn(3)
	for c := 0; c < clouds; c++ {
		b.AddCloud()
		racks := 1 + rng.Intn(3)
		for r := 0; r < racks; r++ {
			b.AddRack()
			b.AddNodes(1 + rng.Intn(4))
		}
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

// TestAttachedIndexTracksMutators drives every inventory mutator —
// SetCapacity, Allocate, Release, Move, FailNode, RestoreNode, and the
// sparse list forms — and checks after each step that the attached index's
// aggregates match a fresh rebuild and that its version tracks the
// inventory's.
func TestAttachedIndexTracksMutators(t *testing.T) {
	rng := rand.New(rand.NewSource(1207))
	for trial := 0; trial < 25; trial++ {
		topo := tierTestPlant(t, rng)
		n := topo.Nodes()
		m := 1 + rng.Intn(3)
		max := make([][]int, n)
		for i := range max {
			max[i] = make([]int, m)
			for j := range max[i] {
				max[i][j] = rng.Intn(5)
			}
		}
		inv, err := NewFromMatrix(max)
		if err != nil {
			t.Fatalf("trial %d: NewFromMatrix: %v", trial, err)
		}
		idx, err := inv.AttachTierIndex(topo)
		if err != nil {
			t.Fatalf("trial %d: AttachTierIndex: %v", trial, err)
		}
		if inv.TierIndex() != idx {
			t.Fatalf("trial %d: TierIndex() did not return the attached index", trial)
		}
		failed := map[int]bool{}
		var ents []affinity.VMEntry
		for step := 0; step < 80; step++ {
			i := topology.NodeID(rng.Intn(n))
			j := model.VMTypeID(rng.Intn(m))
			switch rng.Intn(7) {
			case 0:
				_ = inv.SetCapacity(i, j, rng.Intn(5))
			case 1:
				a := newMatrix(n, m)
				a[i][j] = rng.Intn(3)
				_ = inv.Allocate(a)
			case 2:
				a := newMatrix(n, m)
				a[i][j] = rng.Intn(3)
				_ = inv.Release(a)
			case 3:
				_ = inv.Move(i, topology.NodeID(rng.Intn(n)), j)
			case 4:
				if !failed[int(i)] {
					if _, err := inv.FailNode(i); err == nil {
						failed[int(i)] = true
					}
				} else if err := inv.RestoreNode(i); err == nil {
					failed[int(i)] = false
				}
			case 5:
				ents = append(ents[:0], affinity.VMEntry{Node: i, Type: j, Count: rng.Intn(3)})
				_ = inv.AllocateList(ents)
			case 6:
				ents = append(ents[:0], affinity.VMEntry{Node: i, Type: j, Count: rng.Intn(3)})
				_ = inv.ReleaseList(ents)
			}
			if err := idx.CheckConsistent(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if idx.Version() != inv.Version() {
				t.Fatalf("trial %d step %d: index version %d, inventory %d",
					trial, step, idx.Version(), inv.Version())
			}
			if err := inv.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}

// TestCloneMidChurnKeepsTierIndex pins the Clone bugfix: cloning an
// inventory with an attached tier index mid-churn must hand the clone its
// own consistent index (not drop it, and not alias the source's), and
// further churn on either side must leave the other's index untouched.
func TestCloneMidChurnKeepsTierIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(1208))
	topo := topology.PaperSimPlant()
	n := topo.Nodes()
	const m = 3
	max := make([][]int, n)
	for i := range max {
		max[i] = make([]int, m)
		for j := range max[i] {
			max[i][j] = 1 + rng.Intn(4)
		}
	}
	inv, err := NewFromMatrix(max)
	if err != nil {
		t.Fatalf("NewFromMatrix: %v", err)
	}
	srcIdx, err := inv.AttachTierIndex(topo)
	if err != nil {
		t.Fatalf("AttachTierIndex: %v", err)
	}

	churn := func(target *Inventory, steps int) {
		for s := 0; s < steps; s++ {
			i := topology.NodeID(rng.Intn(n))
			j := model.VMTypeID(rng.Intn(m))
			switch rng.Intn(3) {
			case 0:
				_ = target.AllocateList([]affinity.VMEntry{{Node: i, Type: j, Count: 1 + rng.Intn(2)}})
			case 1:
				_ = target.ReleaseList([]affinity.VMEntry{{Node: i, Type: j, Count: 1}})
			case 2:
				if _, err := target.FailNode(i); err == nil {
					if rng.Intn(2) == 0 {
						_ = target.RestoreNode(i)
					}
				}
			}
		}
	}

	// Clone in the middle of live churn, not from a pristine inventory.
	churn(inv, 40)
	clone := inv.Clone()
	cloneIdx := clone.TierIndex()
	if cloneIdx == nil {
		t.Fatalf("Clone dropped the attached tier index")
	}
	if cloneIdx == srcIdx {
		t.Fatalf("Clone shares the source's tier index")
	}
	if cloneIdx.Version() != clone.Version() {
		t.Fatalf("clone index version %d, inventory %d", cloneIdx.Version(), clone.Version())
	}
	if err := cloneIdx.CheckConsistent(); err != nil {
		t.Fatalf("clone index inconsistent right after Clone: %v", err)
	}

	// Independent churn on both sides: each index must keep tracking its
	// own inventory and never observe the other's mutations.
	srcSnap := inv.Version()
	churn(clone, 40)
	if err := cloneIdx.CheckConsistent(); err != nil {
		t.Fatalf("clone index inconsistent after clone churn: %v", err)
	}
	if inv.Version() != srcSnap {
		t.Fatalf("clone churn mutated the source inventory")
	}
	if err := srcIdx.CheckConsistent(); err != nil {
		t.Fatalf("source index broken by clone churn: %v", err)
	}
	churn(inv, 40)
	if err := srcIdx.CheckConsistent(); err != nil {
		t.Fatalf("source index inconsistent after source churn: %v", err)
	}
	if err := cloneIdx.CheckConsistent(); err != nil {
		t.Fatalf("clone index broken by source churn: %v", err)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatalf("source invariants: %v", err)
	}
	if err := clone.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}

	// A source without an index still clones to one without an index.
	bare, err := NewFromMatrix(max)
	if err != nil {
		t.Fatalf("NewFromMatrix: %v", err)
	}
	if bare.Clone().TierIndex() != nil {
		t.Fatalf("clone of an index-less inventory grew an index")
	}
}

// TestListFormsMatchDense checks AllocateList/ReleaseList against the dense
// Allocate/Release on the same cells, including repeated-cell entries and
// failure atomicity.
func TestListFormsMatchDense(t *testing.T) {
	max := [][]int{{3, 2}, {1, 4}, {0, 5}}
	sparse, err := NewFromMatrix(max)
	if err != nil {
		t.Fatalf("NewFromMatrix: %v", err)
	}
	dense, _ := NewFromMatrix(max)

	ents := []affinity.VMEntry{
		{Node: 0, Type: 0, Count: 1},
		{Node: 0, Type: 0, Count: 2}, // repeated cell: total 3 = capacity
		{Node: 2, Type: 1, Count: 4},
	}
	if err := sparse.AllocateList(ents); err != nil {
		t.Fatalf("AllocateList: %v", err)
	}
	a := newMatrix(3, 2)
	a[0][0] = 3
	a[2][1] = 4
	if err := dense.Allocate(a); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if sparse.RemainingAt(topology.NodeID(i), model.VMTypeID(j)) != dense.RemainingAt(topology.NodeID(i), model.VMTypeID(j)) {
				t.Fatalf("remaining mismatch at (%d,%d)", i, j)
			}
		}
	}

	// Over-allocating via repeated cells must fail atomically.
	before := sparse.Remaining()
	err = sparse.AllocateList([]affinity.VMEntry{
		{Node: 1, Type: 1, Count: 3},
		{Node: 1, Type: 1, Count: 3},
	})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("AllocateList overflow: err = %v, want ErrInsufficient", err)
	}
	after := sparse.Remaining()
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("failed AllocateList mutated state at (%d,%d)", i, j)
			}
		}
	}

	// Releasing more than allocated must fail atomically too.
	err = sparse.ReleaseList([]affinity.VMEntry{
		{Node: 0, Type: 0, Count: 2},
		{Node: 0, Type: 0, Count: 2},
	})
	if err == nil {
		t.Fatalf("ReleaseList over-release succeeded")
	}
	if err := sparse.CheckInvariants(); err != nil {
		t.Fatalf("after failed ReleaseList: %v", err)
	}
	if err := sparse.ReleaseList([]affinity.VMEntry{{Node: 0, Type: 0, Count: 3}}); err != nil {
		t.Fatalf("ReleaseList: %v", err)
	}
	if got := sparse.RemainingAt(0, 0); got != 3 {
		t.Fatalf("RemainingAt(0,0) = %d after release, want 3", got)
	}
}

// TestRemainingViewAliases checks the view reflects mutations without
// copying.
func TestRemainingViewAliases(t *testing.T) {
	inv, err := NewFromMatrix([][]int{{2, 2}})
	if err != nil {
		t.Fatalf("NewFromMatrix: %v", err)
	}
	v := inv.RemainingView()
	if err := inv.AllocateList([]affinity.VMEntry{{Node: 0, Type: 1, Count: 2}}); err != nil {
		t.Fatalf("AllocateList: %v", err)
	}
	if v[0][1] != 0 {
		t.Fatalf("RemainingView did not track mutation: %v", v[0])
	}
	snap := inv.Remaining()
	if err := inv.ReleaseList([]affinity.VMEntry{{Node: 0, Type: 1, Count: 1}}); err != nil {
		t.Fatalf("ReleaseList: %v", err)
	}
	if snap[0][1] != 0 {
		t.Fatalf("Remaining snapshot aliased live state: %v", snap[0])
	}
}
