// Package inventory tracks the resource bookkeeping of Section II of the
// paper: the capacity matrix M (maximum VMs per node per type), the
// allocation matrix C (currently placed VMs), the remaining matrix
// L = M − C, and the availability vector A with A_j = Σ_i L_ij.
//
// An Inventory is safe for concurrent use; the placement algorithms take
// snapshots (Remaining, Available) and commit allocations atomically with
// Allocate.
package inventory

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// ErrInsufficient is returned by Allocate when the requested VMs exceed the
// remaining capacity of some node. The caller's view was stale or the
// placement was computed against a different snapshot.
var ErrInsufficient = errors.New("inventory: insufficient remaining capacity")

// Inventory is the mutable resource state of one cloud.
type Inventory struct {
	mu      sync.RWMutex
	nodes   int
	types   int
	max     [][]int // M
	alloc   [][]int // C (aggregate over all tenants)
	remain  [][]int // L = M − C, kept incrementally
	avail   []int   // A_j = Σ_i L_ij, kept incrementally
	version uint64  // bumps on every successful mutation
	// failed maps a failed node to its saved pre-failure capacity row;
	// FailNode populates it, RestoreNode consumes it.
	failed map[int][]int
	// tidx, when non-nil, is the attached tier-aggregate index over the
	// live remain matrix (see AttachTierIndex); every mutator keeps it in
	// sync under the same lock. tixDeltas is its reusable row-delta
	// scratch for FailNode/RestoreNode.
	tidx      *affinity.TierIndex
	tixDeltas []int
}

// New creates an inventory for nodes × types with zero capacity everywhere.
// Use SetCapacity or NewFromMatrix to install capacities.
func New(nodes, types int) *Inventory {
	if nodes <= 0 || types <= 0 {
		panic(fmt.Sprintf("inventory: New(%d, %d) needs positive dimensions", nodes, types))
	}
	inv := &Inventory{
		nodes:  nodes,
		types:  types,
		max:    newMatrix(nodes, types),
		alloc:  newMatrix(nodes, types),
		remain: newMatrix(nodes, types),
		avail:  make([]int, types),
	}
	return inv
}

// NewFromMatrix creates an inventory whose capacity matrix M is a copy of
// max. Every entry must be non-negative.
func NewFromMatrix(max [][]int) (*Inventory, error) {
	if len(max) == 0 || len(max[0]) == 0 {
		return nil, errors.New("inventory: empty capacity matrix")
	}
	inv := New(len(max), len(max[0]))
	for i, row := range max {
		if len(row) != inv.types {
			return nil, fmt.Errorf("inventory: ragged capacity matrix at row %d", i)
		}
		for j, k := range row {
			if k < 0 {
				return nil, fmt.Errorf("inventory: negative capacity M[%d][%d] = %d", i, j, k)
			}
			inv.max[i][j] = k
			inv.remain[i][j] = k
			inv.avail[j] += k
		}
	}
	return inv, nil
}

func newMatrix(n, m int) [][]int {
	rows := make([][]int, n)
	flat := make([]int, n*m)
	for i := range rows {
		rows[i] = flat[i*m : (i+1)*m]
	}
	return rows
}

func cloneMatrix(src [][]int) [][]int {
	out := newMatrix(len(src), len(src[0]))
	for i := range src {
		copy(out[i], src[i])
	}
	return out
}

// Nodes returns the node dimension n.
func (inv *Inventory) Nodes() int { return inv.nodes }

// Types returns the VM type dimension m.
func (inv *Inventory) Types() int { return inv.types }

// SetCapacity sets M[node][vt] = k (k ≥ 0) for an empty node. It fails if
// VMs are currently allocated on the node for that type beyond k.
func (inv *Inventory) SetCapacity(node topology.NodeID, vt model.VMTypeID, k int) error {
	if k < 0 {
		return fmt.Errorf("inventory: negative capacity %d", k)
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	i, j := int(node), int(vt)
	if i < 0 || i >= inv.nodes || j < 0 || j >= inv.types {
		return fmt.Errorf("inventory: SetCapacity(%d, %d) out of range %dx%d", i, j, inv.nodes, inv.types)
	}
	if inv.alloc[i][j] > k {
		return fmt.Errorf("inventory: node %d already has %d allocated VMs of type %d, cannot shrink capacity to %d",
			i, inv.alloc[i][j], j, k)
	}
	if _, down := inv.failed[i]; down {
		// The node's real capacity is the row saved by FailNode; resizing
		// the zeroed live row would be silently undone — and would corrupt
		// the availability vector — when RestoreNode reinstates it.
		return fmt.Errorf("inventory: node %d is failed, restore it before resizing", i)
	}
	old := inv.max[i][j]
	inv.max[i][j] = k
	inv.remain[i][j] = k - inv.alloc[i][j]
	inv.avail[j] += k - old
	inv.tixApply(node, vt, k-old)
	inv.bumpLocked()
	return nil
}

// Capacity returns M[node][vt].
func (inv *Inventory) Capacity(node topology.NodeID, vt model.VMTypeID) int {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return inv.max[node][vt]
}

// Allocated returns C[node][vt].
func (inv *Inventory) Allocated(node topology.NodeID, vt model.VMTypeID) int {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return inv.alloc[node][vt]
}

// RemainingAt returns L[node][vt] = M[node][vt] − C[node][vt].
func (inv *Inventory) RemainingAt(node topology.NodeID, vt model.VMTypeID) int {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return inv.remain[node][vt]
}

// Remaining returns a copy of the full remaining matrix L. Placement
// algorithms plan against this snapshot and then commit with Allocate.
func (inv *Inventory) Remaining() [][]int {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return cloneMatrix(inv.remain)
}

// CapacityMatrix returns a copy of M.
func (inv *Inventory) CapacityMatrix() [][]int {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return cloneMatrix(inv.max)
}

// AllocatedMatrix returns a copy of C.
func (inv *Inventory) AllocatedMatrix() [][]int {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return cloneMatrix(inv.alloc)
}

// Available returns a copy of the availability vector A, A_j = Σ_i L_ij.
func (inv *Inventory) Available() []int {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	out := make([]int, inv.types)
	copy(out, inv.avail)
	return out
}

// CanSatisfy reports whether the request could be admitted right now, i.e.
// R_j ≤ A_j for every type j (the paper's waiting condition).
func (inv *Inventory) CanSatisfy(r model.Request) bool {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	if len(r) != inv.types {
		return false
	}
	for j, k := range r {
		if k > inv.avail[j] {
			return false
		}
	}
	return true
}

// CanEverSatisfy reports whether the request fits the total plant capacity
// R_j ≤ Σ_i M_ij; if not, the paper's model rejects it outright rather than
// queueing it.
func (inv *Inventory) CanEverSatisfy(r model.Request) bool {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	if len(r) != inv.types {
		return false
	}
	for j := range r {
		total := 0
		for i := 0; i < inv.nodes; i++ {
			total += inv.max[i][j]
		}
		if r[j] > total {
			return false
		}
	}
	return true
}

// Allocate atomically commits an allocation matrix: C += alloc, L -= alloc.
// The matrix must be n×m with non-negative entries. If any entry exceeds
// the remaining capacity the whole call fails with ErrInsufficient and the
// inventory is unchanged.
func (inv *Inventory) Allocate(alloc [][]int) error {
	if err := inv.checkShape(alloc); err != nil {
		return err
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	for i, row := range alloc {
		for j, k := range row {
			if k < 0 {
				return fmt.Errorf("inventory: negative allocation at [%d][%d]", i, j)
			}
			if k > inv.remain[i][j] {
				return fmt.Errorf("%w: node %d type %d has %d remaining, %d requested",
					ErrInsufficient, i, j, inv.remain[i][j], k)
			}
		}
	}
	for i, row := range alloc {
		for j, k := range row {
			inv.alloc[i][j] += k
			inv.remain[i][j] -= k
			inv.avail[j] -= k
			inv.tixApply(topology.NodeID(i), model.VMTypeID(j), -k)
		}
	}
	inv.bumpLocked()
	return nil
}

// Release atomically returns an allocation: C -= alloc, L += alloc. It
// fails if the release exceeds what is currently allocated anywhere, in
// which case the inventory is unchanged.
func (inv *Inventory) Release(alloc [][]int) error {
	if err := inv.checkShape(alloc); err != nil {
		return err
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	for i, row := range alloc {
		for j, k := range row {
			if k < 0 {
				return fmt.Errorf("inventory: negative release at [%d][%d]", i, j)
			}
			if k > inv.alloc[i][j] {
				return fmt.Errorf("inventory: release of %d VMs of type %d on node %d exceeds %d allocated",
					k, j, i, inv.alloc[i][j])
			}
		}
	}
	for i, row := range alloc {
		for j, k := range row {
			inv.alloc[i][j] -= k
			inv.remain[i][j] += k
			inv.avail[j] += k
			inv.tixApply(topology.NodeID(i), model.VMTypeID(j), k)
		}
	}
	inv.bumpLocked()
	return nil
}

func (inv *Inventory) checkShape(alloc [][]int) error {
	if len(alloc) != inv.nodes {
		return fmt.Errorf("inventory: allocation has %d rows, want %d", len(alloc), inv.nodes)
	}
	for i, row := range alloc {
		if len(row) != inv.types {
			return fmt.Errorf("inventory: allocation row %d has %d columns, want %d", i, len(row), inv.types)
		}
	}
	return nil
}

// Move atomically relocates one allocated VM of type vt from one node to
// another: C[from][vt]--, C[to][vt]++ (and L adjusts accordingly). It is
// the bookkeeping step of a live migration. The call fails, changing
// nothing, if no such VM is allocated on from or to has no remaining
// capacity.
func (inv *Inventory) Move(from, to topology.NodeID, vt model.VMTypeID) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	f, tn, j := int(from), int(to), int(vt)
	if f < 0 || f >= inv.nodes || tn < 0 || tn >= inv.nodes || j < 0 || j >= inv.types {
		return fmt.Errorf("inventory: Move(%d, %d, %d) out of range", f, tn, j)
	}
	if f == tn {
		return fmt.Errorf("inventory: Move to the same node %d", f)
	}
	if inv.alloc[f][j] == 0 {
		return fmt.Errorf("inventory: no VM of type %d allocated on node %d", j, f)
	}
	if inv.remain[tn][j] == 0 {
		return fmt.Errorf("%w: node %d has no remaining capacity for type %d", ErrInsufficient, tn, j)
	}
	inv.alloc[f][j]--
	inv.remain[f][j]++
	inv.alloc[tn][j]++
	inv.remain[tn][j]--
	// avail is unchanged: one slot freed, one consumed.
	inv.tixApply(from, vt, 1)
	inv.tixApply(to, vt, -1)
	inv.bumpLocked()
	return nil
}

// FailNode marks a node as failed: its capacity row drops to zero and
// every VM allocated there is lost — dropped from C, not released, since
// a crashed host returns nothing. The pre-failure capacity row is saved
// for RestoreNode. It returns the per-type counts of lost VMs so callers
// can repair the owning clusters' bookkeeping. Failing an already-failed
// node is an error.
func (inv *Inventory) FailNode(node topology.NodeID) ([]int, error) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	i := int(node)
	if i < 0 || i >= inv.nodes {
		return nil, fmt.Errorf("inventory: FailNode(%d) out of range %d nodes", i, inv.nodes)
	}
	if _, down := inv.failed[i]; down {
		return nil, fmt.Errorf("inventory: node %d is already failed", i)
	}
	saved := append([]int(nil), inv.max[i]...)
	lost := append([]int(nil), inv.alloc[i]...)
	for j := 0; j < inv.types; j++ {
		if inv.tidx != nil {
			inv.tixDeltas[j] = -inv.remain[i][j]
		}
		inv.avail[j] -= inv.remain[i][j]
		inv.max[i][j] = 0
		inv.alloc[i][j] = 0
		inv.remain[i][j] = 0
	}
	if inv.failed == nil {
		inv.failed = make(map[int][]int)
	}
	inv.failed[i] = saved
	inv.tixApplyRow(node, inv.tixDeltas)
	inv.bumpLocked()
	return lost, nil
}

// RestoreNode reinstates the capacity saved by FailNode: the node comes
// back empty at its pre-failure capacity. It is an error if the node is
// not currently failed.
func (inv *Inventory) RestoreNode(node topology.NodeID) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	i := int(node)
	if i < 0 || i >= inv.nodes {
		return fmt.Errorf("inventory: RestoreNode(%d) out of range %d nodes", i, inv.nodes)
	}
	saved, down := inv.failed[i]
	if !down {
		return fmt.Errorf("inventory: node %d is not failed", i)
	}
	for j := 0; j < inv.types; j++ {
		inv.max[i][j] = saved[j]
		inv.remain[i][j] = saved[j]
		inv.avail[j] += saved[j]
		if inv.tidx != nil {
			inv.tixDeltas[j] = saved[j]
		}
	}
	delete(inv.failed, i)
	inv.tixApplyRow(node, inv.tixDeltas)
	inv.bumpLocked()
	return nil
}

// FailedNodes returns the currently failed nodes, ascending.
func (inv *Inventory) FailedNodes() []topology.NodeID {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	out := make([]topology.NodeID, 0, len(inv.failed))
	for i := range inv.failed {
		out = append(out, topology.NodeID(i))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Version returns a counter that increases on every successful mutation.
// Placement algorithms can use it to detect stale snapshots.
func (inv *Inventory) Version() uint64 {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return inv.version
}

// CheckInvariants verifies the bookkeeping identities of Section II:
// L = M − C, A_j = Σ_i L_ij, and 0 ≤ C ≤ M everywhere. It returns the
// first violation found. The test suite and the simulators call this after
// every mutation batch.
func (inv *Inventory) CheckInvariants() error {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	sums := make([]int, inv.types)
	for i := 0; i < inv.nodes; i++ {
		for j := 0; j < inv.types; j++ {
			if inv.alloc[i][j] < 0 || inv.alloc[i][j] > inv.max[i][j] {
				return fmt.Errorf("inventory: C[%d][%d] = %d outside [0, M=%d]", i, j, inv.alloc[i][j], inv.max[i][j])
			}
			if inv.remain[i][j] != inv.max[i][j]-inv.alloc[i][j] {
				return fmt.Errorf("inventory: L[%d][%d] = %d, want M−C = %d", i, j, inv.remain[i][j], inv.max[i][j]-inv.alloc[i][j])
			}
			sums[j] += inv.remain[i][j]
		}
	}
	for j, s := range sums {
		if inv.avail[j] != s {
			return fmt.Errorf("inventory: A[%d] = %d, want Σ_i L_ij = %d", j, inv.avail[j], s)
		}
	}
	return nil
}

// Clone returns a deep copy of the inventory, useful for what-if planning
// (the global sub-optimization algorithm plans on a clone before
// committing). When the source has an attached tier index, the clone gets
// its own fresh index over its own remaining matrix: what-if mutations on
// the clone keep the sparse fast paths, and neither inventory can observe
// the other's index going stale.
func (inv *Inventory) Clone() *Inventory {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	out := &Inventory{
		nodes:   inv.nodes,
		types:   inv.types,
		max:     cloneMatrix(inv.max),
		alloc:   cloneMatrix(inv.alloc),
		remain:  cloneMatrix(inv.remain),
		avail:   append([]int(nil), inv.avail...),
		version: inv.version,
	}
	if len(inv.failed) > 0 {
		out.failed = make(map[int][]int, len(inv.failed))
		keys := make([]int, 0, len(inv.failed))
		for i := range inv.failed {
			keys = append(keys, i)
		}
		sort.Ints(keys)
		for _, i := range keys {
			out.failed[i] = append([]int(nil), inv.failed[i]...)
		}
	}
	if inv.tidx != nil {
		// The source index aliases the source's remain matrix, so it cannot
		// be shared; rebuild one over the clone's own rows. The source index
		// attached against this topology and shape, so the rebuild cannot
		// fail; if it somehow does the clone falls back to no index, which
		// is the pre-fix behavior rather than a corrupt attachment.
		if idx, err := affinity.NewTierIndex(inv.tidx.Topology(), out.remain); err == nil {
			idx.SetVersion(out.version)
			out.tidx = idx
			out.tixDeltas = make([]int, out.types)
		}
	}
	return out
}
