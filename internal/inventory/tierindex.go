// Tier-index attachment. The placement fast path prices candidate racks
// from per-rack / per-cloud aggregates of the remaining matrix L; rebuilding
// those aggregates per request is O(n·m) and dominates placement cost at
// large plants. AttachTierIndex instead hangs a long-lived
// affinity.TierIndex off the inventory, aliased directly over L's rows
// (which are flat-backed and never reallocated), and every mutator updates
// it incrementally in O(affected tiers) under the same lock that guards L.
//
// The attached index and RemainingView share the inventory's live storage:
// they are only coherent between mutations. The intended usage is the
// single-writer discipline: exactly one goroutine — the simulator loop, or
// the placement service's apply loop (internal/service) — both mutates the
// inventory and reads the view/index, so its lock-free reads can never
// interleave with a mutation. Any other goroutine must use the cloning
// snapshots (Remaining, Available), whose RLocks order them against the
// writer. The service's race-mode hammer test pins this discipline.
package inventory

import (
	"fmt"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

// AttachTierIndex builds a persistent tier-aggregate index over the live
// remaining matrix L and registers it for incremental maintenance: every
// subsequent successful mutation (SetCapacity, Allocate, Release, Move,
// FailNode, RestoreNode, and the sparse List forms) updates the index and
// stamps it with the inventory's new Version, so a reader can detect a
// stale index by comparing idx.Version() against inv.Version(). Attaching
// replaces any previously attached index.
//
//lint:shared the attached index is the shared view by contract; the inventory keeps it current under its own lock
func (inv *Inventory) AttachTierIndex(t *topology.Topology) (*affinity.TierIndex, error) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if t.Nodes() != inv.nodes {
		return nil, fmt.Errorf("inventory: topology has %d nodes, inventory has %d", t.Nodes(), inv.nodes)
	}
	idx, err := affinity.NewTierIndex(t, inv.remain)
	if err != nil {
		return nil, err
	}
	idx.SetVersion(inv.version)
	inv.tidx = idx
	if cap(inv.tixDeltas) < inv.types {
		inv.tixDeltas = make([]int, inv.types)
	}
	return idx, nil
}

// TierIndex returns the attached index, or nil if AttachTierIndex has not
// been called.
//
//lint:shared single-writer view of the attached index (see RemainingView's contract)
func (inv *Inventory) TierIndex() *affinity.TierIndex {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return inv.tidx
}

// RemainingView returns the live remaining matrix L without copying.
// The rows alias the inventory's internal storage: they change under every
// mutation and must never be written by the caller. The view is only safe
// on the inventory's single writer goroutine (the one performing all
// mutations — see the package comment); everywhere else use Remaining for
// a stable snapshot. The view exists for the placement hot path, where the
// per-request clone of an n×m matrix is the dominant cost.
//
//lint:shared zero-copy single-writer view; the whole point of this accessor
func (inv *Inventory) RemainingView() [][]int {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	return inv.remain
}

// AllocateList atomically commits a sparse allocation: for each entry,
// C[Node][Type] += Count and L[Node][Type] -= Count. Entries may repeat
// cells; the combined total per cell must fit the remaining capacity or the
// whole call fails with ErrInsufficient and the inventory is unchanged.
// Unlike Allocate it touches only the listed cells, so a placement commit
// is O(entries) rather than O(n·m).
//
//lint:hotpath
func (inv *Inventory) AllocateList(entries []affinity.VMEntry) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if err := inv.checkEntries(entries, true); err != nil {
		return err
	}
	for _, e := range entries {
		i, j := int(e.Node), int(e.Type)
		inv.alloc[i][j] += e.Count
		inv.remain[i][j] -= e.Count
		inv.avail[j] -= e.Count
		if inv.tidx != nil {
			inv.tidx.Apply(e.Node, j, -e.Count)
		}
	}
	inv.bumpLocked()
	return nil
}

// ReleaseList atomically returns a sparse allocation: C -= entry counts,
// L += entry counts. It fails, changing nothing, if any cell would go
// below zero allocated.
//
//lint:hotpath
func (inv *Inventory) ReleaseList(entries []affinity.VMEntry) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if err := inv.checkEntries(entries, false); err != nil {
		return err
	}
	for _, e := range entries {
		i, j := int(e.Node), int(e.Type)
		inv.alloc[i][j] -= e.Count
		inv.remain[i][j] += e.Count
		inv.avail[j] += e.Count
		if inv.tidx != nil {
			inv.tidx.Apply(e.Node, j, e.Count)
		}
	}
	inv.bumpLocked()
	return nil
}

// checkEntries validates a sparse entry list against the current state
// without mutating it. Cells may repeat across entries, so the bound is
// checked against the running per-cell total: allocating requires the
// total ≤ L, releasing requires the total ≤ C. The repeated-cell sum is
// accumulated in place over the remain/alloc matrices and rolled back, so
// the success path allocates nothing.
func (inv *Inventory) checkEntries(entries []affinity.VMEntry, allocating bool) error {
	var err error
	k := 0
	for ; k < len(entries); k++ {
		e := entries[k]
		i, j := int(e.Node), int(e.Type)
		if i < 0 || i >= inv.nodes || j < 0 || j >= inv.types {
			err = fmt.Errorf("inventory: entry (%d, %d) out of range %dx%d", i, j, inv.nodes, inv.types)
			break
		}
		if e.Count < 0 {
			err = fmt.Errorf("inventory: negative count %d at node %d type %d", e.Count, i, j)
			break
		}
		if allocating {
			if e.Count > inv.remain[i][j] {
				err = fmt.Errorf("%w: node %d type %d has %d remaining, %d requested",
					ErrInsufficient, i, j, inv.remain[i][j], e.Count)
				break
			}
			inv.remain[i][j] -= e.Count
		} else {
			if e.Count > inv.alloc[i][j] {
				err = fmt.Errorf("inventory: release of %d VMs of type %d on node %d exceeds %d allocated",
					e.Count, int(e.Type), i, inv.alloc[i][j])
				break
			}
			inv.alloc[i][j] -= e.Count
		}
	}
	for k--; k >= 0; k-- {
		e := entries[k]
		if allocating {
			inv.remain[e.Node][e.Type] += e.Count
		} else {
			inv.alloc[e.Node][e.Type] += e.Count
		}
	}
	return err
}

// bumpLocked advances the version and restamps the attached index. Callers
// hold inv.mu.
func (inv *Inventory) bumpLocked() {
	inv.version++
	if inv.tidx != nil {
		inv.tidx.SetVersion(inv.version)
	}
}

// tixApply forwards one cell delta to the attached index, if any. Callers
// hold inv.mu and have already mutated L.
func (inv *Inventory) tixApply(node topology.NodeID, vt model.VMTypeID, delta int) {
	if inv.tidx != nil && delta != 0 {
		inv.tidx.Apply(node, int(vt), delta)
	}
}

// tixApplyRow forwards a whole-row delta (FailNode / RestoreNode) to the
// attached index. Callers hold inv.mu and have already mutated L.
func (inv *Inventory) tixApplyRow(node topology.NodeID, deltas []int) {
	if inv.tidx != nil {
		inv.tidx.ApplyRow(node, deltas)
	}
}
