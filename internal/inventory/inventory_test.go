package inventory

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"affinitycluster/internal/model"
)

func mustInv(t *testing.T, max [][]int) *Inventory {
	t.Helper()
	inv, err := NewFromMatrix(max)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

// tableII builds the capacity relationship of Table II of the paper:
// rack R1 holds N1 (2×V1, 3×V2) and N2 (3×V1, 1×V3); rack R2 holds N3
// (2×V2, 1×V3). Columns are V1, V2, V3.
func tableII(t *testing.T) *Inventory {
	return mustInv(t, [][]int{
		{2, 3, 0},
		{3, 0, 1},
		{0, 2, 1},
	})
}

func TestTableIIAvailability(t *testing.T) {
	inv := tableII(t)
	a := inv.Available()
	want := []int{5, 5, 2}
	for j := range want {
		if a[j] != want[j] {
			t.Errorf("A[%d] = %d, want %d", j, a[j], want[j])
		}
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewFromMatrixRejectsBadInput(t *testing.T) {
	if _, err := NewFromMatrix(nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := NewFromMatrix([][]int{{}}); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := NewFromMatrix([][]int{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewFromMatrix([][]int{{1, -2}}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestAllocateReleaseRoundTrip(t *testing.T) {
	inv := tableII(t)
	alloc := [][]int{
		{1, 2, 0},
		{1, 0, 1},
		{0, 0, 0},
	}
	if err := inv.Allocate(alloc); err != nil {
		t.Fatal(err)
	}
	if got := inv.RemainingAt(0, 0); got != 1 {
		t.Errorf("L[0][0] = %d, want 1", got)
	}
	if got := inv.Allocated(1, 2); got != 1 {
		t.Errorf("C[1][2] = %d, want 1", got)
	}
	a := inv.Available()
	if a[0] != 3 || a[1] != 3 || a[2] != 1 {
		t.Errorf("A = %v, want [3 3 1]", a)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := inv.Release(alloc); err != nil {
		t.Fatal(err)
	}
	a = inv.Available()
	if a[0] != 5 || a[1] != 5 || a[2] != 2 {
		t.Errorf("A after release = %v, want [5 5 2]", a)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateFailsAtomically(t *testing.T) {
	inv := tableII(t)
	bad := [][]int{
		{2, 0, 0},
		{0, 0, 2}, // node 1 has only 1 V3
		{0, 0, 0},
	}
	err := inv.Allocate(bad)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	// Nothing changed — including the part that would have fit.
	if inv.Allocated(0, 0) != 0 {
		t.Error("partial allocation leaked")
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateRejectsNegativeAndBadShape(t *testing.T) {
	inv := tableII(t)
	if err := inv.Allocate([][]int{{1, 0, 0}}); err == nil {
		t.Error("wrong row count accepted")
	}
	if err := inv.Allocate([][]int{{1, 0}, {0, 0}, {0, 0}}); err == nil {
		t.Error("wrong column count accepted")
	}
	if err := inv.Allocate([][]int{{-1, 0, 0}, {0, 0, 0}, {0, 0, 0}}); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestReleaseRejectsOverRelease(t *testing.T) {
	inv := tableII(t)
	if err := inv.Release([][]int{{1, 0, 0}, {0, 0, 0}, {0, 0, 0}}); err == nil {
		t.Error("release of unallocated VMs accepted")
	}
	if err := inv.Release([][]int{{-1, 0, 0}, {0, 0, 0}, {0, 0, 0}}); err == nil {
		t.Error("negative release accepted")
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCanSatisfy(t *testing.T) {
	inv := tableII(t)
	if !inv.CanSatisfy(model.Request{5, 5, 2}) {
		t.Error("full plant request refused")
	}
	if inv.CanSatisfy(model.Request{6, 0, 0}) {
		t.Error("oversized request admitted")
	}
	if inv.CanSatisfy(model.Request{1, 1}) {
		t.Error("wrong-length request admitted")
	}
	// After allocating everything, nothing is satisfiable.
	if err := inv.Allocate(inv.Remaining()); err != nil {
		t.Fatal(err)
	}
	if inv.CanSatisfy(model.Request{1, 0, 0}) {
		t.Error("request admitted on empty inventory")
	}
	if !inv.CanEverSatisfy(model.Request{1, 0, 0}) {
		t.Error("CanEverSatisfy should reflect M, not L")
	}
	if inv.CanEverSatisfy(model.Request{6, 0, 0}) {
		t.Error("CanEverSatisfy admitted beyond plant capacity")
	}
}

func TestSetCapacity(t *testing.T) {
	inv := New(2, 2)
	if err := inv.SetCapacity(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if got := inv.Available()[0]; got != 4 {
		t.Errorf("A[0] = %d, want 4", got)
	}
	if err := inv.SetCapacity(0, 0, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := inv.SetCapacity(5, 0, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := inv.Allocate([][]int{{3, 0}, {0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := inv.SetCapacity(0, 0, 2); err == nil {
		t.Error("capacity shrink below allocation accepted")
	}
	if err := inv.SetCapacity(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if got := inv.RemainingAt(0, 0); got != 2 {
		t.Errorf("L[0][0] = %d after grow, want 2", got)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotsDoNotAlias(t *testing.T) {
	inv := tableII(t)
	l := inv.Remaining()
	l[0][0] = 99
	if inv.RemainingAt(0, 0) == 99 {
		t.Error("Remaining() aliases internal state")
	}
	m := inv.CapacityMatrix()
	m[0][0] = 99
	if inv.Capacity(0, 0) == 99 {
		t.Error("CapacityMatrix() aliases internal state")
	}
	c := inv.AllocatedMatrix()
	c[0][0] = 99
	if inv.Allocated(0, 0) == 99 {
		t.Error("AllocatedMatrix() aliases internal state")
	}
	a := inv.Available()
	a[0] = 99
	if inv.Available()[0] == 99 {
		t.Error("Available() aliases internal state")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	inv := tableII(t)
	cl := inv.Clone()
	if err := cl.Allocate([][]int{{2, 0, 0}, {0, 0, 0}, {0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if inv.Allocated(0, 0) != 0 {
		t.Error("Clone shares state with original")
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	inv := tableII(t)
	v0 := inv.Version()
	if err := inv.Allocate([][]int{{1, 0, 0}, {0, 0, 0}, {0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if inv.Version() == v0 {
		t.Error("Version did not change after Allocate")
	}
	// Failed mutation leaves version unchanged.
	v1 := inv.Version()
	_ = inv.Allocate([][]int{{100, 0, 0}, {0, 0, 0}, {0, 0, 0}})
	if inv.Version() != v1 {
		t.Error("Version changed after failed Allocate")
	}
}

func TestMove(t *testing.T) {
	inv := tableII(t)
	if err := inv.Allocate([][]int{{2, 0, 0}, {0, 0, 0}, {0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	// Move one V1 from node 0 to node 1 (which has 3 free V1 slots).
	if err := inv.Move(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if inv.Allocated(0, 0) != 1 || inv.Allocated(1, 0) != 1 {
		t.Errorf("allocations after move: %d, %d", inv.Allocated(0, 0), inv.Allocated(1, 0))
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Availability is unchanged by a move.
	if got := inv.Available()[0]; got != 3 {
		t.Errorf("A[0] = %d, want 3", got)
	}
	// Error paths.
	if err := inv.Move(0, 0, 0); err == nil {
		t.Error("same-node move accepted")
	}
	if err := inv.Move(2, 1, 0); err == nil {
		t.Error("move of unallocated VM accepted")
	}
	if err := inv.Move(0, 9, 0); err == nil {
		t.Error("out-of-range move accepted")
	}
	if err := inv.Move(1, 2, 0); !errors.Is(err, ErrInsufficient) {
		t.Errorf("move into full node: err = %v", err)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of feasible allocates and matching releases
// preserves the invariants, and releasing everything restores A.
func TestQuickAllocateReleasePreservesInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 4+r.Intn(4), 1+r.Intn(3)
		max := make([][]int, n)
		for i := range max {
			max[i] = make([]int, m)
			for j := range max[i] {
				max[i][j] = r.Intn(5)
			}
		}
		inv, err := NewFromMatrix(max)
		if err != nil {
			return false
		}
		before := inv.Available()
		var allocs [][][]int
		for step := 0; step < 5; step++ {
			l := inv.Remaining()
			a := make([][]int, n)
			for i := range a {
				a[i] = make([]int, m)
				for j := range a[i] {
					if l[i][j] > 0 {
						a[i][j] = r.Intn(l[i][j] + 1)
					}
				}
			}
			if err := inv.Allocate(a); err != nil {
				return false
			}
			if inv.CheckInvariants() != nil {
				return false
			}
			allocs = append(allocs, a)
		}
		for _, a := range allocs {
			if err := inv.Release(a); err != nil {
				return false
			}
			if inv.CheckInvariants() != nil {
				return false
			}
		}
		after := inv.Available()
		for j := range before {
			if before[j] != after[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAllocateRelease(t *testing.T) {
	// 8 workers each repeatedly grab one V0 from node 0 and give it back;
	// capacity 4 bounds concurrency. Invariants must hold throughout.
	inv := mustInv(t, [][]int{{4, 0}, {0, 0}})
	one := [][]int{{1, 0}, {0, 0}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := inv.Allocate(one); err != nil {
					continue // contended; someone else holds all 4
				}
				if err := inv.Release(one); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if inv.Allocated(0, 0) != 0 {
		t.Errorf("leftover allocation %d", inv.Allocated(0, 0))
	}
}

func TestFailAndRestoreNode(t *testing.T) {
	inv := mustInv(t, [][]int{{3, 2}, {1, 1}})
	if err := inv.Allocate([][]int{{2, 1}, {0, 0}}); err != nil {
		t.Fatal(err)
	}
	lost, err := inv.FailNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if lost[0] != 2 || lost[1] != 1 {
		t.Errorf("lost = %v, want [2 1]", lost)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if inv.Capacity(0, 0) != 0 || inv.RemainingAt(0, 0) != 0 || inv.Allocated(0, 0) != 0 {
		t.Error("failed node still shows capacity or allocation")
	}
	if got := inv.Available(); got[0] != 1 || got[1] != 1 {
		t.Errorf("avail = %v, want [1 1]", got)
	}
	if failed := inv.FailedNodes(); len(failed) != 1 || failed[0] != 0 {
		t.Errorf("FailedNodes = %v", failed)
	}
	if _, err := inv.FailNode(0); err == nil {
		t.Error("double failure accepted")
	}
	if err := inv.RestoreNode(1); err == nil {
		t.Error("restore of healthy node accepted")
	}
	if err := inv.RestoreNode(0); err != nil {
		t.Fatal(err)
	}
	if err := inv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The node comes back empty at full pre-failure capacity.
	if inv.Capacity(0, 0) != 3 || inv.Capacity(0, 1) != 2 {
		t.Error("capacity not restored")
	}
	if inv.Allocated(0, 0) != 0 {
		t.Error("restored node should be empty")
	}
	if err := inv.RestoreNode(0); err == nil {
		t.Error("double restore accepted")
	}
	if len(inv.FailedNodes()) != 0 {
		t.Errorf("FailedNodes after restore = %v", inv.FailedNodes())
	}
}

func TestFailNodeRangeAndClone(t *testing.T) {
	inv := mustInv(t, [][]int{{2, 2}, {2, 2}})
	if _, err := inv.FailNode(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := inv.FailNode(2); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := inv.FailNode(1); err != nil {
		t.Fatal(err)
	}
	// A clone carries the failure state independently.
	c := inv.Clone()
	if err := c.RestoreNode(1); err != nil {
		t.Fatal(err)
	}
	if len(inv.FailedNodes()) != 1 {
		t.Error("restore on clone leaked into original")
	}
	if err := inv.RestoreNode(1); err != nil {
		t.Fatal(err)
	}
}
