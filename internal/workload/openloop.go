// Open-loop arrival processes for sustained-load evaluation. The paper's
// scenario generators (RandomRequests + TimedRequests) materialize a
// whole request slice, which is fine at 20 requests and hopeless at a
// million. OpenLoop is the streaming counterpart: a seeded generator
// implementing model.RequestSource that draws one request at a time from
// an open-loop process — Poisson arrivals with diurnal rate modulation,
// heavy-tailed (truncated Pareto) cluster sizes, and heavy-tailed
// (truncated lognormal) lifetimes — the workload shape queueing-theoretic
// evaluations of cluster schedulers run against.
//
// As elsewhere in this package, every distribution is sampled explicitly
// (inverse transform, thinning, Box–Muller) rather than through
// rand.ExpFloat64/NormFloat64, so the seed→sequence mapping is evident
// and stable across Go releases of the ziggurat tables.

package workload

import (
	"fmt"
	"math"
	"math/rand"

	"affinitycluster/internal/model"
)

// OpenLoopConfig parameterizes the open-loop request process.
type OpenLoopConfig struct {
	// BaseRate is the time-averaged arrival rate, requests per simulated
	// second.
	BaseRate float64
	// DiurnalAmplitude in [0, 1) modulates the instantaneous rate as
	// rate(t) = BaseRate·(1 + A·sin(2πt/Period)): 0 is a homogeneous
	// Poisson process, 0.5 swings between half and 1.5× the base rate.
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation period in simulated seconds
	// (default 86400, one day).
	DiurnalPeriod float64

	// Types is the VM type count of every request vector.
	Types int
	// SizeShape is the Pareto tail index α of the total VM count
	// (default 2.2 — finite mean, heavy tail). Smaller is heavier.
	SizeShape float64
	// SizeMin and SizeMax truncate the total VM count (defaults 1, 64).
	SizeMin, SizeMax int

	// HoldMedian is the median lifetime in simulated seconds (the
	// lognormal's e^μ, default 300).
	HoldMedian float64
	// HoldSigma is the lognormal's σ (default 1.2 — a long tail of
	// clusters living far past the median).
	HoldSigma float64
	// HoldMax truncates lifetimes (default 20× the diurnal period, so a
	// single draw cannot pin VMs for the whole run).
	HoldMax float64

	// PriorityLevels > 1 draws uniform priorities in [0, PriorityLevels).
	PriorityLevels int
}

// DefaultOpenLoopConfig is the soak scenario's workload: ~0.5 requests/s
// on average with a pronounced day/night swing, mostly-small clusters
// with a heavy tail up to 64 VMs, and lifetimes with a median of five
// minutes but a tail into many hours.
func DefaultOpenLoopConfig() OpenLoopConfig {
	return OpenLoopConfig{
		BaseRate:         0.5,
		DiurnalAmplitude: 0.6,
		DiurnalPeriod:    86400,
		Types:            3,
		SizeShape:        2.2,
		SizeMin:          1,
		SizeMax:          64,
		HoldMedian:       300,
		HoldSigma:        1.2,
		PriorityLevels:   1,
	}
}

// withDefaults fills zero-valued optional fields.
func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	if c.DiurnalPeriod == 0 {
		c.DiurnalPeriod = 86400
	}
	if c.SizeShape == 0 {
		c.SizeShape = 2.2
	}
	if c.SizeMin == 0 {
		c.SizeMin = 1
	}
	if c.SizeMax == 0 {
		c.SizeMax = 64
	}
	if c.HoldMedian == 0 {
		c.HoldMedian = 300
	}
	if c.HoldSigma == 0 {
		c.HoldSigma = 1.2
	}
	if c.HoldMax == 0 {
		c.HoldMax = 20 * c.DiurnalPeriod
	}
	if c.PriorityLevels == 0 {
		c.PriorityLevels = 1
	}
	return c
}

// validate rejects configurations the generator cannot sample.
func (c OpenLoopConfig) validate() error {
	switch {
	case !(c.BaseRate > 0) || math.IsInf(c.BaseRate, 0):
		return fmt.Errorf("workload: open-loop BaseRate must be positive and finite, got %v", c.BaseRate)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("workload: DiurnalAmplitude must be in [0, 1), got %v", c.DiurnalAmplitude)
	case !(c.DiurnalPeriod > 0):
		return fmt.Errorf("workload: DiurnalPeriod must be positive, got %v", c.DiurnalPeriod)
	case c.Types <= 0:
		return fmt.Errorf("workload: open-loop Types must be positive, got %d", c.Types)
	case !(c.SizeShape > 1):
		return fmt.Errorf("workload: SizeShape must exceed 1 (finite mean), got %v", c.SizeShape)
	case c.SizeMin < 1 || c.SizeMax < c.SizeMin:
		return fmt.Errorf("workload: need 1 ≤ SizeMin ≤ SizeMax, got [%d, %d]", c.SizeMin, c.SizeMax)
	case !(c.HoldMedian > 0) || !(c.HoldSigma >= 0) || !(c.HoldMax > 0):
		return fmt.Errorf("workload: hold distribution invalid: median %v, sigma %v, max %v", c.HoldMedian, c.HoldSigma, c.HoldMax)
	case c.PriorityLevels < 1:
		return fmt.Errorf("workload: PriorityLevels must be ≥ 1, got %d", c.PriorityLevels)
	}
	return nil
}

// MeanVMsPerRequest returns the exact mean cluster size of the sampling
// procedure (floor of a Pareto draw, redrawn past SizeMax) — the sizing
// input for picking a plant that keeps the offered load below capacity.
func (c OpenLoopConfig) MeanVMsPerRequest() float64 {
	c = c.withDefaults()
	// drawSize yields n with probability (F(n+1) − F(n)) / F(SizeMax+1),
	// where F is the Pareto(α, SizeMin) CDF — the redraw renormalizes the
	// tail mass away. SizeMax is small, so sum directly.
	cdf := func(x float64) float64 {
		return 1 - math.Pow(float64(c.SizeMin)/x, c.SizeShape)
	}
	var mean float64
	for n := c.SizeMin; n <= c.SizeMax; n++ {
		mean += float64(n) * (cdf(float64(n+1)) - cdf(float64(n)))
	}
	return mean / cdf(float64(c.SizeMax+1))
}

// MeanHold returns the truncation-ignoring lognormal mean lifetime,
// e^(μ+σ²/2) — an upper bound on the true (truncated) mean, which is the
// safe direction for capacity sizing.
func (c OpenLoopConfig) MeanHold() float64 {
	c = c.withDefaults()
	return c.HoldMedian * math.Exp(c.HoldSigma*c.HoldSigma/2)
}

// OpenLoop streams requests from the configured process. It implements
// model.RequestSource: IDs increase by one per request and arrivals are
// non-decreasing, so it plugs directly into the cloud simulator's
// streaming run or a trace.Writer.
type OpenLoop struct {
	cfg       OpenLoopConfig
	r         *rand.Rand
	clock     float64
	remaining int
	nextID    model.RequestID
}

// NewOpenLoop returns a seeded generator that will emit count requests.
func NewOpenLoop(seed int64, count int, cfg OpenLoopConfig) (*OpenLoop, error) {
	if count <= 0 {
		return nil, fmt.Errorf("workload: NewOpenLoop needs a positive count, got %d", count)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &OpenLoop{cfg: cfg, r: rand.New(rand.NewSource(seed)), remaining: count}, nil
}

// uniform01 draws U(0,1] — never exactly 0, so logs stay finite.
func (g *OpenLoop) uniform01() float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return u
}

// rate is the instantaneous arrival rate at virtual time t.
func (g *OpenLoop) rate(t float64) float64 {
	c := g.cfg
	return c.BaseRate * (1 + c.DiurnalAmplitude*math.Sin(2*math.Pi*t/c.DiurnalPeriod))
}

// nextArrival advances the clock to the next arrival of the modulated
// Poisson process by Lewis–Shedler thinning: candidate gaps are drawn at
// the peak rate and accepted with probability rate(t)/peak.
func (g *OpenLoop) nextArrival() {
	peak := g.cfg.BaseRate * (1 + g.cfg.DiurnalAmplitude)
	for {
		g.clock += -math.Log(g.uniform01()) / peak
		if g.r.Float64()*peak <= g.rate(g.clock) {
			return
		}
	}
}

// drawSize samples the truncated Pareto total VM count by inverse
// transform, redrawing the (rare) tail mass beyond SizeMax so the
// truncation does not pile probability onto the cap.
func (g *OpenLoop) drawSize() int {
	c := g.cfg
	for {
		x := float64(c.SizeMin) * math.Pow(g.uniform01(), -1/c.SizeShape)
		if n := int(x); n <= c.SizeMax {
			return n
		}
	}
}

// drawHold samples the truncated lognormal lifetime via Box–Muller.
func (g *OpenLoop) drawHold() float64 {
	c := g.cfg
	for {
		z := math.Sqrt(-2*math.Log(g.uniform01())) * math.Cos(2*math.Pi*g.r.Float64())
		if h := c.HoldMedian * math.Exp(c.HoldSigma*z); h <= c.HoldMax {
			return h
		}
	}
}

// Next draws the next request; ok=false once count requests were emitted.
func (g *OpenLoop) Next() (model.TimedRequest, bool, error) {
	if g.remaining <= 0 {
		return model.TimedRequest{}, false, nil
	}
	g.remaining--
	g.nextArrival()
	req := make(model.Request, g.cfg.Types)
	for v, n := 0, g.drawSize(); v < n; v++ {
		req[g.r.Intn(g.cfg.Types)]++
	}
	prio := 0
	if g.cfg.PriorityLevels > 1 {
		prio = g.r.Intn(g.cfg.PriorityLevels)
	}
	r := model.TimedRequest{
		ID:       g.nextID,
		Vector:   req,
		Arrival:  g.clock,
		Hold:     g.drawHold(),
		Priority: prio,
	}
	g.nextID++
	return r, true, nil
}
