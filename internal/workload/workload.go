// Package workload generates the randomized inputs of the paper's
// simulations (Section V.A): per-node VM capacities distributed randomly,
// and sequences of random virtual cluster requests. Two request scenarios
// are modelled after the paper's Figs. 5 and 6: Normal (the configuration
// of the earlier figures) and Small ("a request sequence with a relatively
// small number of VMs"). All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"affinitycluster/internal/model"
)

// Scenario selects the request-size regime of the paper's two simulated
// request sequences.
type Scenario int

const (
	// Normal is the configuration of Figs. 2–5: requests of up to ~10 VMs
	// across the three types.
	Normal Scenario = iota
	// Small is the Fig. 6 sequence: requests of only a few VMs, where the
	// global optimization has the most room (the paper reports a 12%
	// improvement versus 2% for Normal).
	Small
)

func (s Scenario) String() string {
	switch s {
	case Normal:
		return "normal"
	case Small:
		return "small"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// InventoryConfig parameterizes random capacity generation.
type InventoryConfig struct {
	// MaxPerType caps each node's capacity for each VM type; capacities
	// are uniform in [0, MaxPerType].
	MaxPerType int
}

// DefaultInventoryConfig matches the scale of the paper's simulated cloud
// (each node offers a handful of instances of each type).
func DefaultInventoryConfig() InventoryConfig { return InventoryConfig{MaxPerType: 4} }

// RandomCapacities draws a nodes×types capacity matrix M.
func RandomCapacities(seed int64, nodes, types int, cfg InventoryConfig) ([][]int, error) {
	if nodes <= 0 || types <= 0 {
		return nil, fmt.Errorf("workload: RandomCapacities(%d, %d) needs positive dimensions", nodes, types)
	}
	if cfg.MaxPerType < 0 {
		return nil, fmt.Errorf("workload: negative MaxPerType %d", cfg.MaxPerType)
	}
	r := rand.New(rand.NewSource(seed))
	m := make([][]int, nodes)
	for i := range m {
		m[i] = make([]int, types)
		for j := range m[i] {
			m[i][j] = r.Intn(cfg.MaxPerType + 1)
		}
	}
	return m, nil
}

// RequestConfig bounds the random request generator.
type RequestConfig struct {
	// MaxPerType caps the per-type count of a Normal request.
	MaxPerType int
	// SmallMaxTotal caps the total VM count of a Small request.
	SmallMaxTotal int
}

// DefaultRequestConfig reproduces the paper's two scenarios at its scale.
func DefaultRequestConfig() RequestConfig {
	return RequestConfig{MaxPerType: 4, SmallMaxTotal: 3}
}

// RandomRequests draws count random non-empty requests over the given
// number of types.
func RandomRequests(seed int64, count, types int, sc Scenario, cfg RequestConfig) ([]model.Request, error) {
	if count <= 0 || types <= 0 {
		return nil, fmt.Errorf("workload: RandomRequests(%d, %d) needs positive arguments", count, types)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]model.Request, count)
	for q := range out {
		req := make(model.Request, types)
		switch sc {
		case Small:
			total := 1 + r.Intn(cfg.SmallMaxTotal)
			for v := 0; v < total; v++ {
				req[r.Intn(types)]++
			}
		default:
			for j := range req {
				req[j] = r.Intn(cfg.MaxPerType + 1)
			}
			if req.IsZero() {
				req[r.Intn(types)] = 1 + r.Intn(cfg.MaxPerType)
			}
		}
		out[q] = req
	}
	return out, nil
}

// ArrivalConfig parameterizes the request arrival/holding process of the
// cloud simulator ("requests will arrive and their job will finish
// randomly").
type ArrivalConfig struct {
	// MeanInterarrival is the mean of the exponential inter-arrival gap.
	MeanInterarrival float64
	// MeanHold is the mean exponential service duration.
	MeanHold float64
	// PriorityLevels > 1 draws uniform priorities in [0, PriorityLevels).
	PriorityLevels int
}

// DefaultArrivalConfig sizes arrivals so the paper's 20-request run keeps
// several clusters concurrently resident.
func DefaultArrivalConfig() ArrivalConfig {
	return ArrivalConfig{MeanInterarrival: 30, MeanHold: 300, PriorityLevels: 1}
}

// TimedRequests attaches Poisson arrivals and exponential holds to a
// request sequence.
func TimedRequests(seed int64, reqs []model.Request, cfg ArrivalConfig) ([]model.TimedRequest, error) {
	if cfg.MeanInterarrival <= 0 || cfg.MeanHold <= 0 {
		return nil, fmt.Errorf("workload: arrival means must be positive: %+v", cfg)
	}
	if cfg.PriorityLevels < 1 {
		return nil, fmt.Errorf("workload: PriorityLevels must be ≥ 1")
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]model.TimedRequest, len(reqs))
	clock := 0.0
	for i, req := range reqs {
		clock += exponential(r, cfg.MeanInterarrival)
		prio := 0
		if cfg.PriorityLevels > 1 {
			prio = r.Intn(cfg.PriorityLevels)
		}
		out[i] = model.TimedRequest{
			ID:       model.RequestID(i),
			Vector:   req.Clone(),
			Arrival:  clock,
			Hold:     exponential(r, cfg.MeanHold),
			Priority: prio,
		}
	}
	return out, nil
}

// exponential draws from Exp(mean) using inverse transform sampling, kept
// explicit (rather than rand.ExpFloat64) so the distribution is evident
// and the seed usage is stable across Go releases of ExpFloat64's
// ziggurat tables.
func exponential(r *rand.Rand, mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// PaperSimulation bundles the full Section V.A setup: the 3-rack × 10-node
// plant capacities and the 20 random requests.
type PaperSimulation struct {
	Capacities [][]int
	Requests   []model.Request
}

// NewPaperSimulation draws a seeded instance of the paper's simulation
// configuration with the given scenario. The Small scenario pairs its
// few-VM requests with fine-grained node capacities (at most one instance
// of each type per node), so that even small clusters must span nodes —
// the regime where the paper reports the global algorithm's largest gains.
func NewPaperSimulation(seed int64, sc Scenario) (*PaperSimulation, error) {
	const (
		nodes    = 30 // 3 racks × 10 nodes
		types    = 3  // Table I
		requests = 20
	)
	invCfg := DefaultInventoryConfig()
	if sc == Small {
		invCfg.MaxPerType = 1
	}
	caps, err := RandomCapacities(seed, nodes, types, invCfg)
	if err != nil {
		return nil, err
	}
	reqs, err := RandomRequests(seed+1, requests, types, sc, DefaultRequestConfig())
	if err != nil {
		return nil, err
	}
	return &PaperSimulation{Capacities: caps, Requests: reqs}, nil
}
