package workload

import (
	"math"
	"testing"

	"affinitycluster/internal/model"
)

func drainOpenLoop(t *testing.T, seed int64, count int, cfg OpenLoopConfig) []model.TimedRequest {
	t.Helper()
	g, err := NewOpenLoop(seed, count, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []model.TimedRequest
	for {
		r, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// TestOpenLoopStreamInvariants: the generator honors the RequestSource
// contract (strictly increasing IDs, non-decreasing arrivals) and its own
// bounds (size truncation, hold truncation, vector shape).
func TestOpenLoopStreamInvariants(t *testing.T) {
	cfg := DefaultOpenLoopConfig()
	cfg.PriorityLevels = 3
	reqs := drainOpenLoop(t, 11, 5000, cfg)
	if len(reqs) != 5000 {
		t.Fatalf("emitted %d requests, want 5000", len(reqs))
	}
	prev := model.TimedRequest{ID: -1}
	for i, r := range reqs {
		if r.ID != model.RequestID(i) {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.Arrival < prev.Arrival {
			t.Fatalf("request %d arrives at %v before %v", i, r.Arrival, prev.Arrival)
		}
		if len(r.Vector) != cfg.Types {
			t.Fatalf("request %d has %d types", i, len(r.Vector))
		}
		if n := r.Vector.TotalVMs(); n < cfg.SizeMin || n > cfg.SizeMax {
			t.Fatalf("request %d asks for %d VMs, outside [%d, %d]", i, n, cfg.SizeMin, cfg.SizeMax)
		}
		if r.Hold <= 0 || r.Hold > cfg.withDefaults().HoldMax {
			t.Fatalf("request %d holds %v", i, r.Hold)
		}
		if r.Priority < 0 || r.Priority >= cfg.PriorityLevels {
			t.Fatalf("request %d priority %d", i, r.Priority)
		}
		prev = r
	}
}

// TestOpenLoopDeterminism: same seed, same stream; different seed,
// different stream.
func TestOpenLoopDeterminism(t *testing.T) {
	cfg := DefaultOpenLoopConfig()
	a := drainOpenLoop(t, 5, 500, cfg)
	b := drainOpenLoop(t, 5, 500, cfg)
	c := drainOpenLoop(t, 6, 500, cfg)
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Hold != b[i].Hold || a[i].Vector.TotalVMs() != b[i].Vector.TotalVMs() {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical arrivals")
	}
}

// TestOpenLoopMeanRate: the long-run arrival rate of the thinned process
// converges to BaseRate (the sinusoid averages out over full periods),
// within sampling tolerance. The period is shrunk so the sample spans
// many complete cycles.
func TestOpenLoopMeanRate(t *testing.T) {
	cfg := DefaultOpenLoopConfig()
	cfg.BaseRate = 2
	cfg.DiurnalPeriod = 1000
	const n = 40000
	reqs := drainOpenLoop(t, 3, n, cfg)
	span := reqs[n-1].Arrival - reqs[0].Arrival
	rate := float64(n-1) / span
	if math.Abs(rate-cfg.BaseRate)/cfg.BaseRate > 0.05 {
		t.Errorf("empirical rate %.3f, want ≈ %v", rate, cfg.BaseRate)
	}
}

// TestOpenLoopDiurnalModulation: with strong modulation, the peak-phase
// quarter of the day receives measurably more arrivals than the trough
// quarter.
func TestOpenLoopDiurnalModulation(t *testing.T) {
	cfg := DefaultOpenLoopConfig()
	cfg.BaseRate = 1
	cfg.DiurnalAmplitude = 0.8
	cfg.DiurnalPeriod = 2000 // many full cycles within the sample
	reqs := drainOpenLoop(t, 9, 60000, cfg)
	var peak, trough int
	for _, r := range reqs {
		phase := math.Mod(r.Arrival, cfg.DiurnalPeriod) / cfg.DiurnalPeriod
		switch {
		case phase >= 0.125 && phase < 0.375: // sin ≈ +1 around phase 0.25
			peak++
		case phase >= 0.625 && phase < 0.875: // sin ≈ −1 around phase 0.75
			trough++
		}
	}
	if trough == 0 || float64(peak)/float64(trough) < 2 {
		t.Errorf("peak/trough = %d/%d, want a pronounced diurnal swing", peak, trough)
	}
}

// TestOpenLoopHeavyTailedSizes: the size distribution actually has a
// tail — most requests are small, but the cap is reachable.
func TestOpenLoopHeavyTailedSizes(t *testing.T) {
	cfg := DefaultOpenLoopConfig()
	reqs := drainOpenLoop(t, 17, 30000, cfg)
	small, large := 0, 0
	maxSeen := 0
	for _, r := range reqs {
		n := r.Vector.TotalVMs()
		if n <= 2 {
			small++
		}
		if n >= 16 {
			large++
		}
		if n > maxSeen {
			maxSeen = n
		}
	}
	if small < len(reqs)/2 {
		t.Errorf("only %d/%d requests are small; Pareto body missing", small, len(reqs))
	}
	if large == 0 {
		t.Error("no request reached 16 VMs; tail missing")
	}
	if maxSeen > cfg.SizeMax {
		t.Errorf("size %d exceeds cap %d", maxSeen, cfg.SizeMax)
	}
}

// TestOpenLoopMeanHelpers sanity-checks the capacity-sizing helpers
// against empirical draws.
func TestOpenLoopMeanHelpers(t *testing.T) {
	cfg := DefaultOpenLoopConfig()
	reqs := drainOpenLoop(t, 21, 30000, cfg)
	var vms, hold float64
	for _, r := range reqs {
		vms += float64(r.Vector.TotalVMs())
		hold += r.Hold
	}
	vms /= float64(len(reqs))
	hold /= float64(len(reqs))
	if m := cfg.MeanVMsPerRequest(); math.Abs(vms-m)/m > 0.15 {
		t.Errorf("empirical mean size %.2f vs analytic %.2f", vms, m)
	}
	// MeanHold ignores truncation, so it upper-bounds the empirical mean.
	if m := cfg.MeanHold(); hold > m*1.05 {
		t.Errorf("empirical mean hold %.1f exceeds analytic bound %.1f", hold, m)
	}
}

// TestOpenLoopConfigRejected: invalid configurations fail construction.
func TestOpenLoopConfigRejected(t *testing.T) {
	base := DefaultOpenLoopConfig()
	mutations := map[string]func(*OpenLoopConfig){
		"zero rate":      func(c *OpenLoopConfig) { c.BaseRate = 0 },
		"amplitude ≥ 1":  func(c *OpenLoopConfig) { c.DiurnalAmplitude = 1 },
		"negative amp":   func(c *OpenLoopConfig) { c.DiurnalAmplitude = -0.1 },
		"no types":       func(c *OpenLoopConfig) { c.Types = -1 },
		"shape ≤ 1":      func(c *OpenLoopConfig) { c.SizeShape = 1 },
		"size inversion": func(c *OpenLoopConfig) { c.SizeMin = 10; c.SizeMax = 5 },
		"inf rate":       func(c *OpenLoopConfig) { c.BaseRate = math.Inf(1) },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := NewOpenLoop(1, 10, cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := NewOpenLoop(1, 0, base); err == nil {
		t.Error("zero count accepted")
	}
}
