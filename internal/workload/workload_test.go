package workload

import (
	"testing"

	"affinitycluster/internal/model"
)

func TestRandomCapacitiesShapeAndDeterminism(t *testing.T) {
	m1, err := RandomCapacities(7, 30, 3, DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != 30 || len(m1[0]) != 3 {
		t.Fatalf("shape = %dx%d", len(m1), len(m1[0]))
	}
	m2, _ := RandomCapacities(7, 30, 3, DefaultInventoryConfig())
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m2[i][j] {
				t.Fatal("same seed produced different capacities")
			}
			if m1[i][j] < 0 || m1[i][j] > DefaultInventoryConfig().MaxPerType {
				t.Fatalf("capacity %d out of range", m1[i][j])
			}
		}
	}
	m3, _ := RandomCapacities(8, 30, 3, DefaultInventoryConfig())
	same := true
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m3[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical capacities")
	}
}

func TestRandomCapacitiesErrors(t *testing.T) {
	if _, err := RandomCapacities(1, 0, 3, DefaultInventoryConfig()); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := RandomCapacities(1, 3, 0, DefaultInventoryConfig()); err == nil {
		t.Error("zero types accepted")
	}
	if _, err := RandomCapacities(1, 3, 3, InventoryConfig{MaxPerType: -1}); err == nil {
		t.Error("negative max accepted")
	}
}

func TestRandomRequestsNormal(t *testing.T) {
	reqs, err := RandomRequests(5, 20, 3, Normal, DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 20 {
		t.Fatalf("count = %d", len(reqs))
	}
	for i, r := range reqs {
		if r.IsZero() {
			t.Errorf("request %d is empty", i)
		}
		for _, k := range r {
			if k < 0 || k > DefaultRequestConfig().MaxPerType {
				t.Errorf("request %d count %d out of range", i, k)
			}
		}
	}
}

func TestRandomRequestsSmall(t *testing.T) {
	cfg := DefaultRequestConfig()
	reqs, err := RandomRequests(5, 50, 3, Small, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		total := r.TotalVMs()
		if total < 1 || total > cfg.SmallMaxTotal {
			t.Errorf("small request %d has %d VMs", i, total)
		}
	}
}

func TestSmallRequestsAreSmallerOnAverage(t *testing.T) {
	normal, _ := RandomRequests(1, 100, 3, Normal, DefaultRequestConfig())
	small, _ := RandomRequests(1, 100, 3, Small, DefaultRequestConfig())
	sum := func(rs []model.Request) int {
		n := 0
		for _, r := range rs {
			n += r.TotalVMs()
		}
		return n
	}
	if sum(small) >= sum(normal) {
		t.Errorf("small total %d not below normal total %d", sum(small), sum(normal))
	}
}

func TestRandomRequestsErrors(t *testing.T) {
	if _, err := RandomRequests(1, 0, 3, Normal, DefaultRequestConfig()); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := RandomRequests(1, 3, 0, Normal, DefaultRequestConfig()); err == nil {
		t.Error("zero types accepted")
	}
}

func TestTimedRequests(t *testing.T) {
	reqs, _ := RandomRequests(2, 10, 3, Normal, DefaultRequestConfig())
	timed, err := TimedRequests(3, reqs, DefaultArrivalConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, tr := range timed {
		if tr.Arrival <= prev {
			t.Errorf("arrival %d not increasing: %v after %v", i, tr.Arrival, prev)
		}
		prev = tr.Arrival
		if tr.Hold <= 0 {
			t.Errorf("hold %d not positive", i)
		}
		if tr.ID != model.RequestID(i) {
			t.Errorf("ID %d != %d", tr.ID, i)
		}
	}
	// Determinism.
	timed2, _ := TimedRequests(3, reqs, DefaultArrivalConfig())
	for i := range timed {
		if timed[i].Arrival != timed2[i].Arrival || timed[i].Hold != timed2[i].Hold {
			t.Fatal("same seed produced different timings")
		}
	}
}

func TestTimedRequestsPriorities(t *testing.T) {
	reqs, _ := RandomRequests(2, 50, 3, Normal, DefaultRequestConfig())
	cfg := DefaultArrivalConfig()
	cfg.PriorityLevels = 4
	timed, err := TimedRequests(3, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, tr := range timed {
		if tr.Priority < 0 || tr.Priority >= 4 {
			t.Fatalf("priority %d out of range", tr.Priority)
		}
		seen[tr.Priority] = true
	}
	if len(seen) < 2 {
		t.Error("priorities not diverse")
	}
}

func TestTimedRequestsErrors(t *testing.T) {
	reqs, _ := RandomRequests(2, 3, 3, Normal, DefaultRequestConfig())
	if _, err := TimedRequests(1, reqs, ArrivalConfig{MeanInterarrival: 0, MeanHold: 1, PriorityLevels: 1}); err == nil {
		t.Error("zero interarrival accepted")
	}
	if _, err := TimedRequests(1, reqs, ArrivalConfig{MeanInterarrival: 1, MeanHold: 0, PriorityLevels: 1}); err == nil {
		t.Error("zero hold accepted")
	}
	if _, err := TimedRequests(1, reqs, ArrivalConfig{MeanInterarrival: 1, MeanHold: 1, PriorityLevels: 0}); err == nil {
		t.Error("zero priority levels accepted")
	}
}

func TestNewPaperSimulation(t *testing.T) {
	sim, err := NewPaperSimulation(42, Normal)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Capacities) != 30 || len(sim.Capacities[0]) != 3 {
		t.Errorf("capacities shape %dx%d", len(sim.Capacities), len(sim.Capacities[0]))
	}
	if len(sim.Requests) != 20 {
		t.Errorf("requests = %d", len(sim.Requests))
	}
}

func TestScenarioString(t *testing.T) {
	if Normal.String() != "normal" || Small.String() != "small" || Scenario(9).String() != "Scenario(9)" {
		t.Error("Scenario strings wrong")
	}
}
