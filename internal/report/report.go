// Package report collects every experiment of the reproduction into one
// machine-readable document, for plotting pipelines and regression
// tracking across library versions. The JSON schema mirrors the
// experiment row types of package experiments.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"affinitycluster/internal/experiments"
)

// SchemaVersion identifies the report layout.
const SchemaVersion = 1

// Report is the consolidated result of one full reproduction run.
type Report struct {
	Schema int    `json:"schema"`
	Paper  string `json:"paper"`
	Seed   int64  `json:"seed"`

	Fig2 []experiments.Fig2Row  `json:"fig2"`
	Fig3 []experiments.Fig3Row  `json:"fig3"`
	Fig4 []experiments.Fig4Row  `json:"fig4"`
	Fig5 *Fig56Summary          `json:"fig5"`
	Fig6 *Fig56Summary          `json:"fig6"`
	Fig7 []experiments.Fig78Row `json:"fig7Balanced"`
	// Fig7Skewed is the anomaly variant; Anomaly names the inverted pair
	// when present.
	Fig7Skewed []experiments.Fig78Row `json:"fig7Skewed"`
	Anomaly    *AnomalyNote           `json:"anomaly,omitempty"`
	ExactGap   *ExactGapSummary       `json:"exactGap"`
}

// Fig56Summary condenses a Fig 5/6 run.
type Fig56Summary struct {
	OnlineTotal    float64                `json:"onlineTotal"`
	GlobalTotal    float64                `json:"globalTotal"`
	ImprovementPct float64                `json:"improvementPct"`
	Rows           []experiments.Fig56Row `json:"rows"`
}

// AnomalyNote records the skewed-run inversion.
type AnomalyNote struct {
	Slower string `json:"slower"`
	Faster string `json:"faster"`
}

// ExactGapSummary condenses the optimality study.
type ExactGapSummary struct {
	Instances  int     `json:"instances"`
	OptimalHit int     `json:"optimalHit"`
	MeanGapPct float64 `json:"meanGapPct"`
	MaxGapPct  float64 `json:"maxGapPct"`
}

// Collect runs every experiment at the given seed and assembles the
// report. gapInstances sizes the optimality study (0 = 100).
func Collect(seed int64, gapInstances int) (*Report, error) {
	if gapInstances <= 0 {
		gapInstances = 100
	}
	r := &Report{
		Schema: SchemaVersion,
		Paper:  "Yan et al., Affinity-aware Virtual Cluster Optimization for MapReduce Applications, CLUSTER 2012",
		Seed:   seed,
	}
	f2, err := experiments.Fig2(seed)
	if err != nil {
		return nil, fmt.Errorf("report: fig2: %w", err)
	}
	r.Fig2 = f2.Rows
	f3, err := experiments.Fig3(seed)
	if err != nil {
		return nil, fmt.Errorf("report: fig3: %w", err)
	}
	r.Fig3 = f3.Rows
	f4, err := experiments.Fig4(seed)
	if err != nil {
		return nil, fmt.Errorf("report: fig4: %w", err)
	}
	r.Fig4 = f4.Rows
	f5, err := experiments.Fig5(seed)
	if err != nil {
		return nil, fmt.Errorf("report: fig5: %w", err)
	}
	r.Fig5 = &Fig56Summary{OnlineTotal: f5.OnlineTotal, GlobalTotal: f5.GlobalTotal, ImprovementPct: f5.ImprovementPct, Rows: f5.Rows}
	f6, err := experiments.Fig6(seed)
	if err != nil {
		return nil, fmt.Errorf("report: fig6: %w", err)
	}
	r.Fig6 = &Fig56Summary{OnlineTotal: f6.OnlineTotal, GlobalTotal: f6.GlobalTotal, ImprovementPct: f6.ImprovementPct, Rows: f6.Rows}
	f78, err := experiments.Fig7and8(seed)
	if err != nil {
		return nil, fmt.Errorf("report: fig7: %w", err)
	}
	r.Fig7 = f78.Rows
	skew, err := experiments.Fig7and8Skewed(seed)
	if err != nil {
		return nil, fmt.Errorf("report: fig7 skewed: %w", err)
	}
	r.Fig7Skewed = skew.Rows
	if inv, slower, faster := skew.HasInversion(); inv {
		r.Anomaly = &AnomalyNote{Slower: slower, Faster: faster}
	}
	gap, err := experiments.ExactGap(seed, gapInstances)
	if err != nil {
		return nil, fmt.Errorf("report: exact gap: %w", err)
	}
	r.ExactGap = &ExactGapSummary{
		Instances:  gap.Instances,
		OptimalHit: gap.OptimalHit,
		MeanGapPct: gap.MeanGapPct,
		MaxGapPct:  gap.MaxGapPct,
	}
	return r, nil
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report (for regression diffing).
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("report: unsupported schema %d", r.Schema)
	}
	return &r, nil
}
