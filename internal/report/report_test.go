package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestCollectAndRoundTrip(t *testing.T) {
	r, err := Collect(2012, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != SchemaVersion || r.Seed != 2012 {
		t.Errorf("header wrong: %+v", r)
	}
	if len(r.Fig2) == 0 || len(r.Fig3) == 0 || len(r.Fig4) == 0 {
		t.Error("simulation figures empty")
	}
	if r.Fig5 == nil || r.Fig6 == nil || len(r.Fig5.Rows) != 20 {
		t.Error("fig5/6 missing")
	}
	if len(r.Fig7) != 4 || len(r.Fig7Skewed) != 4 {
		t.Error("fig7 variants missing")
	}
	if r.Anomaly == nil {
		t.Error("skewed anomaly not recorded at seed 2012")
	}
	if r.ExactGap == nil || r.ExactGap.Instances != 10 {
		t.Error("exact gap missing")
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig7Balanced") {
		t.Error("JSON missing fields")
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != r.Seed || len(back.Fig7) != 4 || back.Fig5.ImprovementPct != r.Fig5.ImprovementPct {
		t.Error("round trip changed the report")
	}
}

func TestReadJSONRejects(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema":99}`)); err == nil {
		t.Error("wrong schema accepted")
	}
}
