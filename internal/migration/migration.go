// Package migration plans affinity-improving live migrations for running
// virtual clusters. The paper cites affinity-aware VM migration as the
// complementary mechanism to placement ("Affinity-aware virtual cluster
// VM migration technology is used to minimize the communication
// overhead", Section VI) and lists reacting to reconfiguration as future
// work; this package provides that mechanism on top of the same distance
// machinery.
//
// A Planner looks at the currently running clusters and the residual
// plant capacity and produces an ordered list of single-VM moves — each
// relocating one VM into free capacity (or trading same-type VMs between
// two clusters, which is capacity-neutral) so that the owning clusters'
// DC strictly decreases. Moves carry a traffic cost (the VM's memory
// image) so operators can bound disruption.
package migration

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/obs"
	"affinitycluster/internal/topology"
)

// MoveKind distinguishes relocations from swaps.
type MoveKind int

const (
	// Relocate moves one VM into free capacity.
	Relocate MoveKind = iota
	// Swap trades same-type VMs between two clusters (capacity-neutral).
	Swap
)

func (k MoveKind) String() string {
	if k == Swap {
		return "swap"
	}
	return "relocate"
}

// Move is one planned migration step.
type Move struct {
	Kind    MoveKind
	Cluster int // index into the planner's cluster list
	// Peer is the second cluster of a Swap (unused for Relocate).
	Peer int
	Type model.VMTypeID
	From topology.NodeID
	To   topology.NodeID
	// Gain is the total DC reduction across the touched clusters.
	Gain float64
	// CostMB is the migration traffic (the moved VM images).
	CostMB float64
}

// Plan is an ordered, dependency-respecting list of moves: applying them
// front to back keeps every intermediate state feasible.
type Plan struct {
	Moves     []Move
	TotalGain float64
	TotalCost float64
}

// Config tunes the planner.
type Config struct {
	// MaxMoves caps the total number of moves in a plan (0 = 64).
	MaxMoves int
	// MinGain discards moves whose DC reduction is below this threshold;
	// 0 accepts any strict improvement.
	MinGain float64
	// Catalog supplies per-type memory sizes for the traffic cost; nil
	// uses model.DefaultCatalog() when the type count matches, else a
	// flat 1 GB per VM.
	Catalog model.Catalog
	// MaxCostMB bounds the plan's total migration traffic (0 = unbounded).
	MaxCostMB float64
}

// Planner computes migration plans. The zero value is usable.
type Planner struct {
	Config Config
	// Obs, when non-nil, receives planner metrics (plan counts, planned
	// moves, gain and traffic histograms). Nil stays a strict no-op.
	Obs *obs.Registry

	obsOnce sync.Once
	metrics plannerMetrics
}

// plannerMetrics are the resolved obs handles; the zero value no-ops.
type plannerMetrics struct {
	plans  *obs.Counter
	moves  *obs.Counter
	gain   *obs.Histogram
	costMB *obs.Histogram
}

func (p *Planner) obsHandles() *plannerMetrics {
	p.obsOnce.Do(func() {
		if p.Obs == nil {
			return
		}
		p.metrics = plannerMetrics{
			plans:  p.Obs.Counter("migration.plans"),
			moves:  p.Obs.Counter("migration.planned_moves"),
			gain:   p.Obs.Histogram("migration.plan_gain", 0, 100, 20),
			costMB: p.Obs.Histogram("migration.plan_cost_mb", 0, 65536, 16),
		}
	})
	return &p.metrics
}

// memoryMB returns the migration traffic of one VM of the given type.
func (p *Planner) memoryMB(types int, vt model.VMTypeID) float64 {
	cat := p.Config.Catalog
	if cat == nil {
		def := model.DefaultCatalog()
		if def.Types() == types {
			cat = def
		}
	}
	if cat != nil && int(vt) < cat.Types() {
		return cat[vt].MemoryGB * 1024
	}
	return 1024
}

// Plan computes an improving migration plan for the running clusters
// against the residual capacity matrix. Neither input is mutated; use
// Apply to realize a plan.
func (p *Planner) Plan(t *topology.Topology, residual [][]int, clusters []affinity.Allocation) (*Plan, error) {
	if t == nil {
		return nil, errors.New("migration: nil topology")
	}
	if len(residual) != t.Nodes() {
		return nil, fmt.Errorf("migration: residual has %d rows, topology has %d nodes", len(residual), t.Nodes())
	}
	work := make([]affinity.Allocation, len(clusters))
	evs := make([]*affinity.DistanceEvaluator, len(clusters))
	for i, c := range clusters {
		if c == nil {
			continue
		}
		if len(c) != t.Nodes() {
			return nil, fmt.Errorf("migration: cluster %d has %d rows, topology has %d nodes", i, len(c), t.Nodes())
		}
		work[i] = c.Clone()
		evs[i] = affinity.NewDistanceEvaluator(t, work[i])
	}
	free := make([][]int, len(residual))
	for i := range residual {
		free[i] = append([]int(nil), residual[i]...)
	}

	maxMoves := p.Config.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 64
	}
	plan := &Plan{}
	for len(plan.Moves) < maxMoves {
		mv, ok := p.bestMove(t, free, work, evs)
		if !ok || mv.Gain <= p.Config.MinGain {
			break
		}
		if p.Config.MaxCostMB > 0 && plan.TotalCost+mv.CostMB > p.Config.MaxCostMB {
			break
		}
		p.applyTo(work, free, mv)
		evs[mv.Cluster].Move(mv.From, mv.To)
		if mv.Kind == Swap {
			evs[mv.Peer].Move(mv.To, mv.From)
		}
		plan.Moves = append(plan.Moves, mv)
		plan.TotalGain += mv.Gain
		plan.TotalCost += mv.CostMB
	}
	om := p.obsHandles()
	om.plans.Inc()
	om.moves.Add(int64(len(plan.Moves)))
	if len(plan.Moves) > 0 {
		om.gain.Observe(plan.TotalGain)
		om.costMB.Observe(plan.TotalCost)
	}
	return plan, nil
}

// bestMove scans all relocations and swaps for the single largest gain.
// Candidates are priced through the clusters' maintained distance
// evaluators (MovePreview) instead of mutate-and-revert full recomputation;
// the scan order, strict-improvement threshold, and first-wins tie handling
// are unchanged, so the chosen move is identical.
func (p *Planner) bestMove(t *topology.Topology, free [][]int, clusters []affinity.Allocation, evs []*affinity.DistanceEvaluator) (Move, bool) {
	var best Move
	found := false
	consider := func(mv Move) {
		if !found || mv.Gain > best.Gain {
			best = mv
			found = true
		}
	}
	n := t.Nodes()
	// Relocations into free capacity.
	for ci, c := range clusters {
		if c == nil {
			continue
		}
		d0, _ := evs[ci].Distance()
		m := len(c[0])
		for from := 0; from < n; from++ {
			for j := 0; j < m; j++ {
				if c[from][j] == 0 {
					continue
				}
				for to := 0; to < n; to++ {
					if to == from || free[to][j] == 0 {
						continue
					}
					d1, _ := evs[ci].MovePreview(topology.NodeID(from), topology.NodeID(to))
					if gain := d0 - d1; gain > 1e-12 {
						consider(Move{
							Kind:    Relocate,
							Cluster: ci,
							Peer:    -1,
							Type:    model.VMTypeID(j),
							From:    topology.NodeID(from),
							To:      topology.NodeID(to),
							Gain:    gain,
							CostMB:  p.memoryMB(m, model.VMTypeID(j)),
						})
					}
				}
			}
		}
	}
	// Capacity-neutral swaps between cluster pairs (Theorem 2 exchanges).
	for ai := 0; ai < len(clusters); ai++ {
		a := clusters[ai]
		if a == nil {
			continue
		}
		for bi := ai + 1; bi < len(clusters); bi++ {
			b := clusters[bi]
			if b == nil {
				continue
			}
			da0, _ := evs[ai].Distance()
			db0, _ := evs[bi].Distance()
			m := len(a[0])
			for pN := 0; pN < n; pN++ {
				for qN := 0; qN < n; qN++ {
					if pN == qN {
						continue
					}
					for j := 0; j < m; j++ {
						if a[pN][j] == 0 || b[qN][j] == 0 {
							continue
						}
						da1, _ := evs[ai].MovePreview(topology.NodeID(pN), topology.NodeID(qN))
						db1, _ := evs[bi].MovePreview(topology.NodeID(qN), topology.NodeID(pN))
						if gain := (da0 + db0) - (da1 + db1); gain > 1e-12 {
							consider(Move{
								Kind:    Swap,
								Cluster: ai,
								Peer:    bi,
								Type:    model.VMTypeID(j),
								From:    topology.NodeID(pN),
								To:      topology.NodeID(qN),
								Gain:    gain,
								CostMB:  2 * p.memoryMB(m, model.VMTypeID(j)),
							})
						}
					}
				}
			}
		}
	}
	return best, found
}

// applyTo realizes one move on working state.
func (p *Planner) applyTo(clusters []affinity.Allocation, free [][]int, mv Move) {
	c := clusters[mv.Cluster]
	switch mv.Kind {
	case Relocate:
		c.Remove(mv.From, mv.Type)
		c.Add(mv.To, mv.Type)
		free[mv.From][mv.Type]++
		free[mv.To][mv.Type]--
	case Swap:
		peer := clusters[mv.Peer]
		c.Remove(mv.From, mv.Type)
		c.Add(mv.To, mv.Type)
		peer.Remove(mv.To, mv.Type)
		peer.Add(mv.From, mv.Type)
	}
}

// Apply realizes a plan in place on the caller's clusters and residual
// matrix. The plan must have been produced for exactly these inputs (or
// equivalent state); a move that no longer fits aborts with an error,
// leaving earlier moves applied — callers wanting atomicity should apply
// to clones.
func (p *Planner) Apply(plan *Plan, clusters []affinity.Allocation, residual [][]int) error {
	for i, mv := range plan.Moves {
		c := clusters[mv.Cluster]
		if c == nil || c[mv.From][mv.Type] == 0 {
			return fmt.Errorf("migration: move %d no longer applicable", i)
		}
		switch mv.Kind {
		case Relocate:
			if residual[mv.To][mv.Type] == 0 {
				return fmt.Errorf("migration: move %d target capacity gone", i)
			}
		case Swap:
			peer := clusters[mv.Peer]
			if peer == nil || peer[mv.To][mv.Type] == 0 {
				return fmt.Errorf("migration: move %d swap peer changed", i)
			}
		}
		p.applyTo(clusters, residual, mv)
	}
	return nil
}

// ErrNoCapacity is returned by PlanReplacement when some lost VM cannot
// be hosted anywhere in the residual capacity — the degraded cluster
// cannot be evacuated in place and must be re-placed wholesale.
var ErrNoCapacity = errors.New("migration: insufficient residual capacity for replacement")

// PlanReplacement is the evacuation half of fault recovery: a node
// failure destroyed `lost[j]` VMs of each type j belonging to `cluster`
// (whose rows for the dead nodes are already zeroed), and replacements
// must be placed into the residual capacity. Each replacement VM goes to
// the feasible node minimizing the cluster's resulting DC — the same
// greedy single-VM step the planner's Relocate moves use, so evacuated
// clusters land as tight as a migration pass would leave them. The scan
// is deterministic (type-major, ascending node IDs, strict improvement
// to switch), inputs are not mutated, and the returned matrix holds only
// the replacement VMs so callers can Allocate it and merge it into the
// cluster.
func PlanReplacement(t *topology.Topology, residual [][]int, cluster affinity.Allocation, lost model.Request) (affinity.Allocation, error) {
	if t == nil {
		return nil, errors.New("migration: nil topology")
	}
	n := t.Nodes()
	if len(residual) != n || len(cluster) != n {
		return nil, fmt.Errorf("migration: residual has %d rows, cluster %d, topology %d nodes", len(residual), len(cluster), n)
	}
	ev := affinity.NewDistanceEvaluator(t, cluster)
	free := make([][]int, n)
	for i := range residual {
		free[i] = append([]int(nil), residual[i]...)
	}
	repl := affinity.NewAllocation(n, len(lost))
	for j, count := range lost {
		for v := 0; v < count; v++ {
			best := -1
			bestD := math.Inf(1)
			for i := 0; i < n; i++ {
				if free[i][j] == 0 {
					continue
				}
				d, _ := ev.AddPreview(topology.NodeID(i))
				if d < bestD {
					bestD, best = d, i
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("%w: no node can host a type-%d replacement", ErrNoCapacity, j)
			}
			ev.Add(topology.NodeID(best))
			free[best][j]--
			repl[best][j]++
		}
	}
	return repl, nil
}

// TotalDistance sums DC over non-nil clusters — the quantity migrations
// shrink.
func TotalDistance(t *topology.Topology, clusters []affinity.Allocation) float64 {
	total := 0.0
	for _, c := range clusters {
		if c != nil {
			d, _ := c.Distance(t)
			total += d
		}
	}
	return total
}
