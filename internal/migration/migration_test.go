package migration

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
)

func twoRacks(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestPlanValidation(t *testing.T) {
	tp := twoRacks(t)
	p := &Planner{}
	if _, err := p.Plan(nil, nil, nil); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := p.Plan(tp, [][]int{{1}}, nil); err == nil {
		t.Error("short residual accepted")
	}
	bad := []affinity.Allocation{{{1}}}
	res := make([][]int, tp.Nodes())
	for i := range res {
		res[i] = []int{0}
	}
	if _, err := p.Plan(tp, res, bad); err == nil {
		t.Error("short cluster accepted")
	}
}

func TestRelocationIntoFreedCapacity(t *testing.T) {
	tp := twoRacks(t)
	// A cluster straddling racks: 3 VMs on node 0 (rack 0), 1 on node 3
	// (rack 1). Node 1 (rack 0) has a free slot — the planner must move
	// the stray VM there.
	cluster := affinity.Allocation{{3}, {0}, {0}, {1}, {0}, {0}}
	residual := [][]int{{0}, {1}, {0}, {0}, {0}, {0}}
	p := &Planner{}
	plan, err := p.Plan(tp, residual, []affinity.Allocation{cluster})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 {
		t.Fatalf("moves = %+v", plan.Moves)
	}
	mv := plan.Moves[0]
	if mv.Kind != Relocate || mv.From != 3 || mv.To != 1 {
		t.Fatalf("move = %+v", mv)
	}
	// Gain: DC before = 3 VMs@0 +1@3 → center 0: d2 = 2. After: center 0:
	// d1 = 1. Gain 1.
	if mv.Gain != 1 {
		t.Errorf("gain = %v, want 1", mv.Gain)
	}
	if mv.CostMB <= 0 {
		t.Error("zero migration cost")
	}
	// Inputs untouched.
	if cluster[3][0] != 1 || residual[1][0] != 1 {
		t.Error("Plan mutated its inputs")
	}
}

func TestApplyRealizesPlan(t *testing.T) {
	tp := twoRacks(t)
	cluster := affinity.Allocation{{3}, {0}, {0}, {1}, {0}, {0}}
	residual := [][]int{{0}, {1}, {0}, {0}, {0}, {0}}
	p := &Planner{}
	clusters := []affinity.Allocation{cluster}
	plan, err := p.Plan(tp, residual, clusters)
	if err != nil {
		t.Fatal(err)
	}
	before := TotalDistance(tp, clusters)
	if err := p.Apply(plan, clusters, residual); err != nil {
		t.Fatal(err)
	}
	after := TotalDistance(tp, clusters)
	if before-after != plan.TotalGain {
		t.Errorf("gain mismatch: %v vs %v", before-after, plan.TotalGain)
	}
	if cluster[1][0] != 1 || cluster[3][0] != 0 {
		t.Errorf("apply wrong: %v", cluster)
	}
	if residual[1][0] != 0 || residual[3][0] != 1 {
		t.Errorf("residual wrong: %v", residual)
	}
}

func TestApplyDetectsStaleness(t *testing.T) {
	tp := twoRacks(t)
	cluster := affinity.Allocation{{3}, {0}, {0}, {1}, {0}, {0}}
	residual := [][]int{{0}, {1}, {0}, {0}, {0}, {0}}
	p := &Planner{}
	plan, err := p.Plan(tp, residual, []affinity.Allocation{cluster})
	if err != nil {
		t.Fatal(err)
	}
	// Steal the free slot before applying.
	residual[1][0] = 0
	if err := p.Apply(plan, []affinity.Allocation{cluster}, residual); err == nil {
		t.Error("stale plan applied")
	}
}

func TestSwapBetweenClusters(t *testing.T) {
	tp := twoRacks(t)
	// Cluster A concentrated on rack 0 with a stray on node 3 (rack 1);
	// cluster B concentrated on rack 1 with a stray on node 1 (rack 0).
	// No free capacity anywhere: only a swap fixes both.
	a := affinity.Allocation{{2}, {0}, {0}, {1}, {0}, {0}}
	b := affinity.Allocation{{0}, {1}, {0}, {2}, {0}, {0}}
	residual := make([][]int, tp.Nodes())
	for i := range residual {
		residual[i] = []int{0}
	}
	p := &Planner{}
	clusters := []affinity.Allocation{a, b}
	plan, err := p.Plan(tp, residual, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("no swap found")
	}
	if plan.Moves[0].Kind != Swap {
		t.Fatalf("move = %+v", plan.Moves[0])
	}
	if err := p.Apply(plan, clusters, residual); err != nil {
		t.Fatal(err)
	}
	// After the swap A = {2 on node 0, 1 on node 1} (DC = d1 = 1) and
	// B = {3 on node 3} (DC = 0): total 1, down from 4.
	if got := TotalDistance(tp, clusters); got != 1 {
		t.Errorf("total distance after swap = %v, want 1", got)
	}
}

func TestMaxMovesAndCostCaps(t *testing.T) {
	tp := twoRacks(t)
	// Two strays, plenty of free capacity: an unbounded plan has 2 moves.
	cluster := affinity.Allocation{{3}, {0}, {0}, {1}, {1}, {0}}
	residual := [][]int{{0}, {2}, {2}, {0}, {0}, {0}}
	unbounded, err := (&Planner{}).Plan(tp, residual, []affinity.Allocation{cluster})
	if err != nil {
		t.Fatal(err)
	}
	if len(unbounded.Moves) != 2 {
		t.Fatalf("unbounded moves = %d", len(unbounded.Moves))
	}
	one, err := (&Planner{Config: Config{MaxMoves: 1}}).Plan(tp, residual, []affinity.Allocation{cluster})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Moves) != 1 {
		t.Fatalf("capped moves = %d", len(one.Moves))
	}
	// Cost cap below one VM's memory forbids everything.
	none, err := (&Planner{Config: Config{MaxCostMB: 1}}).Plan(tp, residual, []affinity.Allocation{cluster})
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Moves) != 0 {
		t.Fatalf("cost-capped moves = %d", len(none.Moves))
	}
}

func TestMinGainFilters(t *testing.T) {
	tp := twoRacks(t)
	// The only improving move gains exactly 1 (cross-rack → same-rack).
	cluster := affinity.Allocation{{3}, {0}, {0}, {1}, {0}, {0}}
	residual := [][]int{{0}, {1}, {0}, {0}, {0}, {0}}
	plan, err := (&Planner{Config: Config{MinGain: 1.5}}).Plan(tp, residual, []affinity.Allocation{cluster})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Fatalf("low-gain move not filtered: %+v", plan.Moves)
	}
}

func TestNilClustersSkipped(t *testing.T) {
	tp := twoRacks(t)
	residual := make([][]int, tp.Nodes())
	for i := range residual {
		residual[i] = []int{1}
	}
	plan, err := (&Planner{}).Plan(tp, residual, []affinity.Allocation{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Error("moves for nil clusters")
	}
}

func TestMoveKindString(t *testing.T) {
	if Relocate.String() != "relocate" || Swap.String() != "swap" {
		t.Error("MoveKind strings wrong")
	}
}

func TestMemoryCostUsesCatalog(t *testing.T) {
	tp := twoRacks(t)
	cluster := affinity.Allocation{{0, 0, 3}, {0, 0, 0}, {0, 0, 0}, {0, 0, 1}, {0, 0, 0}, {0, 0, 0}}
	residual := make([][]int, tp.Nodes())
	for i := range residual {
		residual[i] = []int{0, 0, 0}
	}
	residual[1][2] = 1
	plan, err := (&Planner{}).Plan(tp, residual, []affinity.Allocation{cluster})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 1 {
		t.Fatalf("moves = %d", len(plan.Moves))
	}
	// Large instance (Table I): 7.5 GB → 7680 MB.
	if plan.Moves[0].CostMB != 7.5*1024 {
		t.Errorf("cost = %v, want 7680", plan.Moves[0].CostMB)
	}
}

// Property: plans strictly reduce total DC by exactly TotalGain, never
// violate residual capacity, and preserve each cluster's request vector.
func TestQuickPlanSoundness(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	n := tp.Nodes()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random running clusters and residual capacity.
		clusters := make([]affinity.Allocation, 2+r.Intn(2))
		for ci := range clusters {
			c := affinity.NewAllocation(n, 2)
			for v := 0; v < 2+r.Intn(5); v++ {
				c[r.Intn(n)][r.Intn(2)]++
			}
			clusters[ci] = c
		}
		residual := make([][]int, n)
		for i := range residual {
			residual[i] = []int{r.Intn(2), r.Intn(2)}
		}
		vecsBefore := make([]model.Request, len(clusters))
		for ci, c := range clusters {
			vecsBefore[ci] = c.Vector()
		}
		before := TotalDistance(tp, clusters)
		p := &Planner{}
		plan, err := p.Plan(tp, residual, clusters)
		if err != nil {
			return false
		}
		if err := p.Apply(plan, clusters, residual); err != nil {
			return false
		}
		after := TotalDistance(tp, clusters)
		if before-after < plan.TotalGain-1e-9 || before-after > plan.TotalGain+1e-9 {
			return false
		}
		for i := range residual {
			for j := range residual[i] {
				if residual[i][j] < 0 {
					return false
				}
			}
		}
		for ci, c := range clusters {
			got := c.Vector()
			for j := range got {
				if got[j] != vecsBefore[ci][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPlanReplacementPrefersClusterRack(t *testing.T) {
	// 2 racks × 3 nodes. The cluster lives on nodes 0 and 1 (rack 0);
	// node 2 (rack 0) and node 3 (rack 1) both have free capacity. The
	// replacement for one lost VM must land on node 2, the same rack.
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	cluster := affinity.NewAllocation(6, 1)
	cluster[0][0] = 2
	cluster[1][0] = 1
	residual := [][]int{{0}, {0}, {1}, {1}, {0}, {0}}
	repl, err := PlanReplacement(tp, residual, cluster, model.Request{1})
	if err != nil {
		t.Fatal(err)
	}
	if repl[2][0] != 1 || repl.TotalVMs() != 1 {
		t.Errorf("replacement = %v, want 1 VM on node 2", repl)
	}
	// Inputs must be untouched.
	if cluster.TotalVMs() != 3 || residual[2][0] != 1 {
		t.Error("PlanReplacement mutated its inputs")
	}
}

func TestPlanReplacementMultiVMAndNoCapacity(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	cluster := affinity.NewAllocation(6, 2)
	cluster[0][0] = 1
	residual := [][]int{{0, 0}, {1, 1}, {1, 0}, {2, 2}, {0, 0}, {0, 0}}
	repl, err := PlanReplacement(tp, residual, cluster, model.Request{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if repl.TotalVMs() != 3 {
		t.Fatalf("placed %d VMs, want 3", repl.TotalVMs())
	}
	// All replacements must respect residual capacity.
	for i := range repl {
		for j, k := range repl[i] {
			if k > residual[i][j] {
				t.Errorf("node %d type %d: placed %d, residual %d", i, j, k, residual[i][j])
			}
		}
	}
	// Rack 0 (nodes 0–2) can host both type-0 VMs; they must stay with
	// the cluster rather than straddle into rack 1.
	if repl[1][0]+repl[2][0] != 2 {
		t.Errorf("type-0 replacements left the cluster rack: %v", repl)
	}
	if _, err := PlanReplacement(tp, residual, cluster, model.Request{9, 0}); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("impossible replacement: %v", err)
	}
}
