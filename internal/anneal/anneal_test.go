package anneal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func plant(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestValidation(t *testing.T) {
	tp := plant(t)
	if _, err := Optimize(nil, nil, nil, Options{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Optimize(tp, [][]int{{1}}, nil, Options{}); err == nil {
		t.Error("short capacity matrix accepted")
	}
}

func TestAnnealNeverWorseThanSeed(t *testing.T) {
	tp := topology.PaperSimPlant()
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		caps, err := workload.RandomCapacities(r.Int63(), tp.Nodes(), 3, workload.DefaultInventoryConfig())
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.RandomRequests(r.Int63(), 8, 3, workload.Normal, workload.DefaultRequestConfig())
		if err != nil {
			t.Fatal(err)
		}
		seed, err := placement.PlaceSequential(tp, caps, reqs, &placement.OnlineHeuristic{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(tp, caps, reqs, Options{Seed: int64(trial), Iterations: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != seed.Failed {
			continue
		}
		if res.Total > seed.Total+1e-9 {
			t.Errorf("trial %d: anneal %v worse than seed %v", trial, res.Total, seed.Total)
		}
	}
}

func TestAnnealRespectsCapacityAndVectors(t *testing.T) {
	tp := plant(t)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		caps, err := workload.RandomCapacities(r.Int63(), tp.Nodes(), 2, workload.DefaultInventoryConfig())
		if err != nil {
			t.Fatal(err)
		}
		reqs := []model.Request{
			{1 + r.Intn(3), r.Intn(2)},
			{1 + r.Intn(3), r.Intn(2)},
			{1 + r.Intn(2), r.Intn(2)},
		}
		res, err := Optimize(tp, caps, reqs, Options{Seed: int64(trial), Iterations: 2000})
		if err != nil {
			t.Fatal(err)
		}
		used := make([][]int, tp.Nodes())
		for i := range used {
			used[i] = make([]int, 2)
		}
		for qi, a := range res.Allocs {
			if a == nil {
				continue
			}
			if !a.Satisfies(reqs[qi]) {
				t.Fatalf("trial %d: request %d vector broken", trial, qi)
			}
			for i := range a {
				for j, k := range a[i] {
					used[i][j] += k
				}
			}
		}
		for i := range used {
			for j := range used[i] {
				if used[i][j] > caps[i][j] {
					t.Fatalf("trial %d: capacity violated at node %d type %d", trial, i, j)
				}
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	tp := plant(t)
	caps, err := workload.RandomCapacities(5, tp.Nodes(), 2, workload.DefaultInventoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.RandomRequests(6, 5, 2, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Optimize(tp, caps, reqs, Options{Seed: 9, Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(tp, caps, reqs, Options{Seed: 9, Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Total != r2.Total || r1.Accepted != r2.Accepted {
		t.Errorf("same seed diverged: %v/%d vs %v/%d", r1.Total, r1.Accepted, r2.Total, r2.Accepted)
	}
}

// Property: the annealed total is sandwiched between the exact GSD
// optimum and the sequential-online seed.
func TestQuickAnnealSandwich(t *testing.T) {
	tp, err := topology.Uniform(1, 2, 2, topology.DefaultDistances())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := tp.Nodes()
		caps := make([][]int, n)
		totalCap := 0
		for i := range caps {
			caps[i] = []int{2 + r.Intn(3)}
			totalCap += caps[i][0]
		}
		reqs := []model.Request{{1 + r.Intn(3)}, {1 + r.Intn(3)}}
		if reqs[0][0]+reqs[1][0] > totalCap {
			return true
		}
		exact, err := sdexact.SolveGSD(tp, caps, reqs, sdexact.GSDOptions{})
		if err != nil {
			return false
		}
		seedRes, err := placement.PlaceSequential(tp, caps, reqs, &placement.OnlineHeuristic{})
		if err != nil || seedRes.Failed > 0 {
			return true
		}
		res, err := Optimize(tp, caps, reqs, Options{Seed: seed, Iterations: 1500})
		if err != nil || res.Failed > 0 {
			return false
		}
		return res.Total >= exact.Total-1e-9 && res.Total <= seedRes.Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyBatchAndAllInfeasible(t *testing.T) {
	tp := plant(t)
	caps := make([][]int, tp.Nodes())
	for i := range caps {
		caps[i] = []int{0}
	}
	res, err := Optimize(tp, caps, []model.Request{{5}}, Options{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Total != 0 {
		t.Errorf("result = %+v", res)
	}
}
