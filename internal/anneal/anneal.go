// Package anneal provides a simulated-annealing batch optimizer for the
// global shortest-distance problem — an alternative to the paper's
// Algorithm 2 exchange local search. Where Algorithm 2 only accepts
// strictly improving moves (and therefore stops at the nearest local
// minimum), annealing occasionally accepts worsening moves early on,
// escaping local minima at the cost of more evaluations. The benchmark
// harness compares both against the exact GSD optimum.
//
// Determinism: all randomness comes from the seeded generator in Options,
// so runs are reproducible.
package anneal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
)

// Options tunes the annealer.
type Options struct {
	// Seed drives the random walk.
	Seed int64
	// Iterations is the number of proposed moves (0 = 20000).
	Iterations int
	// StartTemp is the initial temperature in distance units (0 = 2.0);
	// the schedule decays geometrically to ~0.01 × StartTemp.
	StartTemp float64
}

// Result is the annealed batch placement.
type Result struct {
	Allocs   []affinity.Allocation // nil entry: request not placed
	Total    float64               // Σ DC over placed requests
	Failed   int
	Accepted int // accepted proposals
	Proposed int
}

// Optimize places the batch with the online heuristic, then anneals the
// joint placement with single-VM relocations (into spare capacity) and
// same-type swaps between clusters. The capacity snapshot l is not
// mutated.
func Optimize(t *topology.Topology, l [][]int, reqs []model.Request, opt Options) (*Result, error) {
	if t == nil {
		return nil, errors.New("anneal: nil topology")
	}
	if len(l) != t.Nodes() {
		return nil, fmt.Errorf("anneal: capacity matrix has %d rows, topology has %d nodes", len(l), t.Nodes())
	}
	iterations := opt.Iterations
	if iterations <= 0 {
		iterations = 20000
	}
	startTemp := opt.StartTemp
	if startTemp <= 0 {
		startTemp = 2.0
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Seed state: sequential online placement.
	seed, err := placement.PlaceSequential(t, l, reqs, &placement.OnlineHeuristic{})
	if err != nil {
		return nil, err
	}
	res := &Result{Allocs: seed.Allocs, Failed: seed.Failed}
	var placed []int
	for qi, a := range res.Allocs {
		if a != nil {
			placed = append(placed, qi)
		}
	}
	if len(placed) == 0 {
		return res, nil
	}
	// Residual capacity after the seed placement.
	free := make([][]int, t.Nodes())
	for i := range l {
		free[i] = append([]int(nil), l[i]...)
	}
	for _, qi := range placed {
		a := res.Allocs[qi]
		for i := range a {
			for j, k := range a[i] {
				free[i][j] -= k
			}
		}
	}
	// One incremental evaluator per placed cluster: proposals are priced
	// via O(hosts) previews and the allocation is only mutated on accept.
	evs := make([]*affinity.DistanceEvaluator, len(res.Allocs))
	dc := make(map[int]float64, len(placed))
	total := 0.0
	for _, qi := range placed {
		evs[qi] = affinity.NewDistanceEvaluator(t, res.Allocs[qi])
		d, _ := evs[qi].Distance()
		dc[qi] = d
		total += d
	}
	best := total
	bestState := cloneState(res.Allocs)

	n := t.Nodes()
	m := len(reqs[0])
	decay := math.Pow(0.01, 1/float64(iterations)) // StartTemp → 1% over the run
	temp := startTemp
	types := make([]int, 0, m) // hoisted proposal scratch, reused per iteration
	for it := 0; it < iterations; it++ {
		temp *= decay
		res.Proposed++
		qi := placed[rng.Intn(len(placed))]
		a := res.Allocs[qi]
		ev := evs[qi]
		// Pick a random hosted (node, type) cell.
		hosts := ev.HostingNodes()
		from := hosts[rng.Intn(len(hosts))]
		types = types[:0]
		for j := 0; j < m; j++ {
			if a[from][j] > 0 {
				types = append(types, j)
			}
		}
		j := types[rng.Intn(len(types))]
		to := topology.NodeID(rng.Intn(n))
		if to == from {
			continue
		}
		if free[to][j] > 0 {
			// Relocation proposal, priced without mutating.
			before := dc[qi]
			after, _ := ev.MovePreview(from, to)
			if accept(after-before, temp, rng) {
				a.Remove(from, model.VMTypeID(j))
				a.Add(to, model.VMTypeID(j))
				ev.Move(from, to)
				free[from][j]++
				free[to][j]--
				dc[qi] = after
				total += after - before
				res.Accepted++
			} else {
				continue
			}
		} else {
			// Swap proposal with a cluster hosting type j on `to`.
			pi := -1
			for _, cand := range placed {
				if cand != qi && res.Allocs[cand][to][j] > 0 {
					pi = cand
					break
				}
			}
			if pi < 0 {
				continue
			}
			b := res.Allocs[pi]
			beforeSum := dc[qi] + dc[pi]
			da, _ := ev.MovePreview(from, to)
			db, _ := evs[pi].MovePreview(to, from)
			if accept((da+db)-beforeSum, temp, rng) {
				a.Remove(from, model.VMTypeID(j))
				a.Add(to, model.VMTypeID(j))
				ev.Move(from, to)
				b.Remove(to, model.VMTypeID(j))
				b.Add(from, model.VMTypeID(j))
				evs[pi].Move(to, from)
				dc[qi], dc[pi] = da, db
				total += (da + db) - beforeSum
				res.Accepted++
			} else {
				continue
			}
		}
		if total < best-1e-12 {
			best = total
			bestState = cloneState(res.Allocs)
		}
	}
	res.Allocs = bestState
	res.Total = best
	return res, nil
}

// accept implements the Metropolis criterion.
func accept(delta, temp float64, rng *rand.Rand) bool {
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-delta/temp)
}

func cloneState(allocs []affinity.Allocation) []affinity.Allocation {
	out := make([]affinity.Allocation, len(allocs))
	for i, a := range allocs {
		if a != nil {
			out[i] = a.Clone()
		}
	}
	return out
}
