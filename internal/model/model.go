// Package model defines the basic vocabulary of the affinity-aware virtual
// cluster provisioning system: virtual machine types, the catalog of types a
// cloud offers (Table I of the paper), and user requests for virtual
// clusters (the request vector R of Section II).
//
// All heavier machinery — topologies, inventories, placement algorithms —
// builds on these types.
package model

import (
	"errors"
	"fmt"
	"strings"
)

// VMTypeID indexes a VM type within a Catalog. Values are dense: the j-th
// type of a catalog has VMTypeID j, matching the paper's subscript V_j.
type VMTypeID int

// VMType describes one virtual machine flavor a provider offers, mirroring
// the Amazon EC2-style instance descriptions in Table I of the paper.
type VMType struct {
	// Name is the human-readable flavor name, e.g. "small".
	Name string
	// MemoryGB is the RAM allocated to an instance of this type.
	MemoryGB float64
	// ComputeUnits is the CPU capacity in EC2-style compute units.
	ComputeUnits int
	// StorageGB is the instance storage.
	StorageGB int
	// Platform is the ISA width, e.g. "32-bit" or "64-bit".
	Platform string
}

// Catalog is the ordered set of VM types offered by a cloud. Its length is
// the paper's m. Order is significant: request vectors and allocation
// matrices are indexed by position in the catalog.
type Catalog []VMType

// DefaultCatalog reproduces Table I of the paper: the three Amazon EC2
// instance types (small, medium, large) used throughout the evaluation.
func DefaultCatalog() Catalog {
	return Catalog{
		{Name: "small", MemoryGB: 1.7, ComputeUnits: 1, StorageGB: 160, Platform: "32-bit"},
		{Name: "medium", MemoryGB: 3.75, ComputeUnits: 2, StorageGB: 410, Platform: "64-bit"},
		{Name: "large", MemoryGB: 7.5, ComputeUnits: 4, StorageGB: 850, Platform: "64-bit"},
	}
}

// Types returns the number of VM types in the catalog (the paper's m).
func (c Catalog) Types() int { return len(c) }

// IndexOf returns the VMTypeID of the type with the given name, or an error
// if no such type exists.
func (c Catalog) IndexOf(name string) (VMTypeID, error) {
	for i, t := range c {
		if t.Name == name {
			return VMTypeID(i), nil
		}
	}
	return -1, fmt.Errorf("model: catalog has no VM type %q", name)
}

// Validate checks that the catalog is well-formed: non-empty, unique
// non-empty names, and positive resource figures.
func (c Catalog) Validate() error {
	if len(c) == 0 {
		return errors.New("model: catalog is empty")
	}
	seen := make(map[string]bool, len(c))
	for i, t := range c {
		if t.Name == "" {
			return fmt.Errorf("model: catalog entry %d has empty name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("model: duplicate VM type name %q", t.Name)
		}
		seen[t.Name] = true
		if t.MemoryGB <= 0 || t.ComputeUnits <= 0 || t.StorageGB <= 0 {
			return fmt.Errorf("model: VM type %q has non-positive resources", t.Name)
		}
	}
	return nil
}

// Request is the paper's request vector R: Request[j] instances of catalog
// type j are being asked for, all provisioned at the same time as one
// virtual cluster.
type Request []int

// NewRequest returns an all-zero request for a catalog with m types.
func NewRequest(m int) Request { return make(Request, m) }

// Clone returns an independent copy of the request.
func (r Request) Clone() Request {
	out := make(Request, len(r))
	copy(out, r)
	return out
}

// TotalVMs returns the total number of VMs requested across all types.
func (r Request) TotalVMs() int {
	n := 0
	for _, k := range r {
		n += k
	}
	return n
}

// IsZero reports whether the request asks for no VMs at all.
func (r Request) IsZero() bool { return r.TotalVMs() == 0 }

// Validate checks the request against a catalog: the length must equal the
// number of types and every count must be non-negative, with at least one
// positive entry.
func (r Request) Validate(c Catalog) error {
	if len(r) != c.Types() {
		return fmt.Errorf("model: request has %d entries, catalog has %d types", len(r), c.Types())
	}
	total := 0
	for j, k := range r {
		if k < 0 {
			return fmt.Errorf("model: request count for type %d is negative (%d)", j, k)
		}
		total += k
	}
	if total == 0 {
		return errors.New("model: request asks for zero VMs")
	}
	return nil
}

// String renders the request as e.g. "{small:2 medium:4 large:1}" when a
// catalog is not at hand; type indices are used as names.
func (r Request) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for j, k := range r {
		if k == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "V%d:%d", j, k)
	}
	if first {
		b.WriteString("empty")
	}
	b.WriteByte('}')
	return b.String()
}

// Min returns the element-wise minimum of two equal-length vectors. It is
// the paper's com(A, B) helper: com(A, B) == B holds exactly when A can
// supply everything B asks for.
func Min(a, b []int) []int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("model: Min on vectors of different lengths %d and %d", len(a), len(b)))
	}
	out := make([]int, len(a))
	for i := range a {
		if a[i] < b[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// Covers reports whether vector a dominates vector b element-wise, i.e.
// com(a, b) == b in the paper's notation: a can satisfy all of b.
func Covers(a, b []int) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("model: Covers on vectors of different lengths %d and %d", len(a), len(b)))
	}
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// Sub returns a-b element-wise. It panics if lengths differ.
func Sub(a, b []int) []int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("model: Sub on vectors of different lengths %d and %d", len(a), len(b)))
	}
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a+b element-wise. It panics if lengths differ.
func Add(a, b []int) []int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("model: Add on vectors of different lengths %d and %d", len(a), len(b)))
	}
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sum returns the sum of the entries of v.
func Sum(v []int) int {
	n := 0
	for _, x := range v {
		n += x
	}
	return n
}

// RequestID identifies a request within a batch, queue, or simulation run.
type RequestID int

// TimedRequest couples a request vector with queueing metadata used by the
// wait queue and the cloud simulator.
type TimedRequest struct {
	ID       RequestID
	Vector   Request
	Arrival  float64 // arrival time, simulation seconds
	Hold     float64 // service duration once provisioned, simulation seconds
	Priority int     // larger is more urgent; used by the priority queue policy
}

// RequestSource streams timed requests one at a time, so multi-million
// request traces can be generated or replayed without ever materializing
// them as a slice. Implementations must yield requests in non-decreasing
// arrival order with strictly increasing IDs — that ordering is what lets
// consumers (the cloud simulator's streaming run, the trace writer's
// validator) do duplicate detection and scheduling in O(1) memory.
type RequestSource interface {
	// Next returns the next request. ok=false means the source is
	// exhausted; a non-nil error aborts the stream.
	Next() (r TimedRequest, ok bool, err error)
}

// SliceSource adapts an in-memory request slice to RequestSource, for
// callers that already hold a (small) trace.
type SliceSource struct {
	reqs []TimedRequest
	i    int
}

// NewSliceSource wraps reqs; the slice is read, never mutated.
func NewSliceSource(reqs []TimedRequest) *SliceSource { return &SliceSource{reqs: reqs} }

// Next yields the next element of the slice.
//
//lint:shared requests are immutable by contract; cloning per Next defeats zero-copy streaming
func (s *SliceSource) Next() (TimedRequest, bool, error) {
	if s.i >= len(s.reqs) {
		return TimedRequest{}, false, nil
	}
	r := s.reqs[s.i]
	s.i++
	return r, true, nil
}
