package model

import (
	"testing"
	"testing/quick"
)

func TestDefaultCatalogMatchesTableI(t *testing.T) {
	c := DefaultCatalog()
	if err := c.Validate(); err != nil {
		t.Fatalf("default catalog invalid: %v", err)
	}
	if got, want := c.Types(), 3; got != want {
		t.Fatalf("Types() = %d, want %d", got, want)
	}
	// Table I rows, verbatim from the paper.
	want := []VMType{
		{"small", 1.7, 1, 160, "32-bit"},
		{"medium", 3.75, 2, 410, "64-bit"},
		{"large", 7.5, 4, 850, "64-bit"},
	}
	for i, w := range want {
		if c[i] != w {
			t.Errorf("catalog[%d] = %+v, want %+v", i, c[i], w)
		}
	}
}

func TestCatalogIndexOf(t *testing.T) {
	c := DefaultCatalog()
	id, err := c.IndexOf("medium")
	if err != nil {
		t.Fatalf("IndexOf(medium): %v", err)
	}
	if id != 1 {
		t.Errorf("IndexOf(medium) = %d, want 1", id)
	}
	if _, err := c.IndexOf("xlarge"); err == nil {
		t.Error("IndexOf(xlarge) succeeded, want error")
	}
}

func TestCatalogValidateRejectsBadCatalogs(t *testing.T) {
	cases := []struct {
		name string
		c    Catalog
	}{
		{"empty", Catalog{}},
		{"empty name", Catalog{{Name: "", MemoryGB: 1, ComputeUnits: 1, StorageGB: 1}}},
		{"duplicate", Catalog{
			{Name: "a", MemoryGB: 1, ComputeUnits: 1, StorageGB: 1},
			{Name: "a", MemoryGB: 2, ComputeUnits: 2, StorageGB: 2},
		}},
		{"zero memory", Catalog{{Name: "a", MemoryGB: 0, ComputeUnits: 1, StorageGB: 1}}},
		{"zero cpu", Catalog{{Name: "a", MemoryGB: 1, ComputeUnits: 0, StorageGB: 1}}},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	c := DefaultCatalog()
	if err := (Request{2, 4, 1}).Validate(c); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	if err := (Request{2, 4}).Validate(c); err == nil {
		t.Error("short request accepted")
	}
	if err := (Request{-1, 4, 1}).Validate(c); err == nil {
		t.Error("negative request accepted")
	}
	if err := (Request{0, 0, 0}).Validate(c); err == nil {
		t.Error("zero request accepted")
	}
}

func TestRequestTotalAndClone(t *testing.T) {
	r := Request{2, 4, 1}
	if got := r.TotalVMs(); got != 7 {
		t.Errorf("TotalVMs = %d, want 7", got)
	}
	cl := r.Clone()
	cl[0] = 99
	if r[0] != 2 {
		t.Error("Clone aliases the original")
	}
	if Request([]int{0, 0}).IsZero() != true {
		t.Error("IsZero false for zero request")
	}
}

func TestRequestString(t *testing.T) {
	if got := (Request{2, 0, 1}).String(); got != "{V0:2 V2:1}" {
		t.Errorf("String() = %q", got)
	}
	if got := (Request{0, 0}).String(); got != "{empty}" {
		t.Errorf("String() of zero request = %q", got)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []int{3, 1, 5}
	b := []int{2, 4, 5}
	if got := Min(a, b); got[0] != 2 || got[1] != 1 || got[2] != 5 {
		t.Errorf("Min = %v", got)
	}
	if Covers(a, b) {
		t.Error("Covers(a,b) = true, want false")
	}
	if !Covers([]int{3, 4, 5}, b) {
		t.Error("Covers = false, want true")
	}
	if got := Sub(a, []int{1, 1, 1}); got[0] != 2 || got[1] != 0 || got[2] != 4 {
		t.Errorf("Sub = %v", got)
	}
	if got := Add(a, b); got[0] != 5 || got[1] != 5 || got[2] != 10 {
		t.Errorf("Add = %v", got)
	}
	if got := Sum(a); got != 9 {
		t.Errorf("Sum = %d", got)
	}
}

func TestVectorHelpersPanicOnLengthMismatch(t *testing.T) {
	fns := map[string]func(){
		"Min":    func() { Min([]int{1}, []int{1, 2}) },
		"Covers": func() { Covers([]int{1}, []int{1, 2}) },
		"Sub":    func() { Sub([]int{1}, []int{1, 2}) },
		"Add":    func() { Add([]int{1}, []int{1, 2}) },
	}
	for name, fn := range fns {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Min is commutative, idempotent, and dominated by both arguments;
// Covers(a, b) holds exactly when Min(a, b) equals b.
func TestQuickMinCoversAgree(t *testing.T) {
	f := func(xs [8]uint8, ys [8]uint8) bool {
		a := make([]int, 8)
		b := make([]int, 8)
		for i := range xs {
			a[i] = int(xs[i])
			b[i] = int(ys[i])
		}
		m := Min(a, b)
		m2 := Min(b, a)
		for i := range m {
			if m[i] != m2[i] || m[i] > a[i] || m[i] > b[i] {
				return false
			}
		}
		eqB := true
		for i := range m {
			if m[i] != b[i] {
				eqB = false
			}
		}
		return Covers(a, b) == eqB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add and Sub are inverses.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(xs [6]int16, ys [6]int16) bool {
		a := make([]int, 6)
		b := make([]int, 6)
		for i := range xs {
			a[i] = int(xs[i])
			b[i] = int(ys[i])
		}
		r := Sub(Add(a, b), b)
		for i := range r {
			if r[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
