GO ?= go

# Pinned versions of the external analysis tools CI installs; bump
# deliberately, never track latest.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race vet lint lint-tools lint-fixtures lint-json fuzz-smoke faults-race service-race soak-race elastic-race bench bench-hot bench-json bench-churn bench-service bench-soak bench-soak-short bench-elastic verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static-analysis gate: the repo's own analyzer suite (aliasret,
# detrand, errdrop, goexit, hotpath, maporder, scratchpool,
# singlewriter — see DESIGN.md §10 and §15) plus staticcheck and
# govulncheck when installed. CI installs the pinned versions via
# lint-tools; offline checkouts skip the external tools with a notice so
# `make lint` stays runnable anywhere.
lint:
	$(GO) run ./cmd/affinitylint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else echo "lint: staticcheck not installed (CI pins $(STATICCHECK_VERSION)); skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else echo "lint: govulncheck not installed (CI pins $(GOVULNCHECK_VERSION)); skipping"; fi

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# The analyzers' own tests: fixture suites (testdata/src + // want),
# the callgraph/driver unit tests, and the real-package hotpath check.
# Fast — it skips the whole-repo self-host re-lint that `make test` runs.
lint-fixtures:
	$(GO) test ./internal/lint/...

# Machine-readable findings for CI artifacts; [] on a clean tree. The
# command exits 0 even with findings so the artifact always uploads —
# the `lint` target is the pass/fail gate.
lint-json:
	$(GO) run ./cmd/affinitylint -json ./... > LINT.json || true
	@cat LINT.json

# Native fuzz targets, ~10s each: topology JSON import (reject or
# round-trip, never panic) and Algorithm 1 placement (capacity respected,
# evaluator DC(C) matches the row-scan oracle).
fuzz-smoke:
	$(GO) test ./internal/topology -run '^$$' -fuzz '^FuzzTopologyImportJSON$$' -fuzztime 10s
	$(GO) test ./internal/placement -run '^$$' -fuzz '^FuzzPlaceRequest$$' -fuzztime 10s

# Fault-injection gate: the fault/recovery tests under the race detector
# plus one seeded end-to-end faults figure, so every recovery path runs
# race-checked on each change.
faults-race:
	$(GO) test -race ./internal/faults ./internal/cloudsim ./internal/experiments -run 'Fault|Crash|Teardown|Recovery'
	$(GO) run -race ./cmd/affinitysim -fig faults > /dev/null

# Placement-service gate: the concurrency-sensitive service tests (the
# 64-client determinism property, the place/release hammer, and the
# cloudsim serve-parity check) under the race detector.
service-race:
	$(GO) test -race ./internal/service ./internal/cloudsim -run 'Service|Ordered|Serve'

# Streaming-replay gate: the soak scenario and the stream/retained
# parity tests under the race detector, plus one seeded soak figure at a
# reduced request count so the whole RunStream path (lazy arrivals,
# sketches, fault teardown rollback) runs race-checked on each change.
soak-race:
	$(GO) test -race ./internal/cloudsim ./internal/experiments ./internal/trace ./internal/workload -run 'Stream|Soak|OpenLoop'
	$(GO) run -race ./cmd/affinitysim -fig soak -requests 20000 > /dev/null

# Elastic-resize gate: the delta-placement, mid-job resize, and
# grow/shrink service tests under the race detector, plus one seeded
# end-to-end elastic figure, so every resize path (PlaceDelta,
# ReleaseSubset, deadline admission, deferred grows, teardown
# cancellation) runs race-checked on each change.
elastic-race:
	$(GO) test -race ./internal/placement ./internal/cloudsim ./internal/experiments ./internal/service -run 'Elastic|PlaceDelta|ReleaseSubset|DeltaChurn|GrowShrink|ShrinkWakes|GrowInsufficient'
	$(GO) run -race ./cmd/affinitysim -fig elastic > /dev/null

# Full benchmark suite: every table/figure plus ablations.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the hot-path benchmarks gated by the performance acceptance
# criteria (incremental vs scratch DC evaluation, Algorithm 1/2 cost).
bench-hot:
	$(GO) test -run '^$$' -bench 'BenchmarkDistance(Scratch|Incremental)$$|BenchmarkOnlinePlace$$|BenchmarkAblationTransferFixpoint' .

# Scale benchmarks (1×3×10 → 100×100×100 plants, pruned vs exhaustive
# center scan) recorded as machine-readable JSON. A fixed 100-iteration
# benchtime keeps the run deterministic in length while averaging enough
# iterations to hold timer noise down; benchjson rejects any
# single-iteration result, so -benchtime=1x can't sneak back in.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkPlaceScale' -benchmem -benchtime=100x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_placement.json
	@cat BENCH_placement.json

# Steady-state churn benchmarks (release oldest / place identical /
# commit, plus a fail-restore mix) against the live inventory with the
# persistent tier index attached, up to the 1M-node plant.
bench-churn:
	$(GO) test -run '^$$' -bench 'BenchmarkChurn' -benchmem -benchtime=100x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_churn.json
	@cat BENCH_churn.json

# Serving throughput (place + release round trips per second at 1, 8,
# and 64 concurrent clients) recorded as machine-readable JSON. The
# higher fixed iteration count amortizes client goroutine startup so the
# figure reflects steady-state serving, not spawn cost; the run still
# finishes in well under a second.
bench-service:
	$(GO) test -run '^$$' -bench 'BenchmarkService' -benchmem -benchtime=20000x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_service.json
	@cat BENCH_service.json

# Soak benchmark (100k- and 1M-request streaming replays) recorded as
# machine-readable JSON. Each op is itself a long internally-averaged
# run, so -benchtime=1x is correct here: benchjson accepts the
# single-iteration results because they carry custom metrics (req/s,
# peak-heap-bytes), which are the figures that matter.
bench-soak:
	$(GO) test -run '^$$' -bench 'BenchmarkSoak' -benchtime=1x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_soak.json
	@cat BENCH_soak.json

# Mid-job resize benchmarks (grow-by-k through PlaceDeltaSparse against
# populated 16k- and 1M-node plants) recorded as machine-readable JSON.
# Same fixed 100-iteration benchtime as bench-json/bench-churn.
bench-elastic:
	$(GO) test -run '^$$' -bench 'BenchmarkPlaceDelta' -benchmem -benchtime=100x -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_elastic.json
	@cat BENCH_elastic.json

# CI's short arm: only the 100k-request soak (the 1M arm skips under
# -short), same JSON artifact shape.
bench-soak-short:
	$(GO) test -run '^$$' -bench 'BenchmarkSoak' -benchtime=1x -short -timeout 30m . | $(GO) run ./cmd/benchjson > BENCH_soak.json
	@cat BENCH_soak.json

# The pre-merge gate: build, vet, lint, full tests, and the race detector.
verify: build vet lint test race
