GO ?= go

.PHONY: all build test race vet bench bench-hot verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark suite: every table/figure plus ablations.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the hot-path benchmarks gated by the performance acceptance
# criteria (incremental vs scratch DC evaluation, Algorithm 1/2 cost).
bench-hot:
	$(GO) test -run '^$$' -bench 'BenchmarkDistance(Scratch|Incremental)$$|BenchmarkOnlinePlace$$|BenchmarkAblationTransferFixpoint' .

# The pre-merge gate: build, vet, full tests, and the race detector.
verify: build vet test race
