GO ?= go

.PHONY: all build test race vet bench bench-hot bench-json verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark suite: every table/figure plus ablations.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the hot-path benchmarks gated by the performance acceptance
# criteria (incremental vs scratch DC evaluation, Algorithm 1/2 cost).
bench-hot:
	$(GO) test -run '^$$' -bench 'BenchmarkDistance(Scratch|Incremental)$$|BenchmarkOnlinePlace$$|BenchmarkAblationTransferFixpoint' .

# Scale benchmarks (1×3×10 → 10×40×40 plants, pruned vs exhaustive center
# scan) recorded as machine-readable JSON. One iteration per benchmark —
# the pruned/exhaustive gap is ~40× at the top size, far above timer noise.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkPlaceScale' -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson > BENCH_placement.json
	@cat BENCH_placement.json

# The pre-merge gate: build, vet, full tests, and the race detector.
verify: build vet test race
