// Package bench is the paper-reproduction benchmark harness: one
// benchmark per table and figure of the evaluation (regenerating the
// reported rows/series), plus the ablation benchmarks called out in
// DESIGN.md and micro-benchmarks of the hot paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem .
package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/anneal"
	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/experiments"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/jointopt"
	"affinitycluster/internal/lp"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

const benchSeed = 2012

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

// BenchmarkTableI regenerates the instance catalog of Table I.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.TableI(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableII regenerates the capacity example of Table II.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.TableII(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 2–6 (simulation study)
// ---------------------------------------------------------------------------

// BenchmarkFig2 regenerates Fig. 2: heuristic (best-center) distance vs
// the same allocations under a random central node, 20 requests on the
// 3×10 plant.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3: the central node chosen per request.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4: one allocation's distance as the
// central node sweeps every hosting node.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: online heuristic vs global
// sub-optimization, Normal request scenario.
func BenchmarkFig5(b *testing.B) {
	var lastImprovement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if res.GlobalTotal > res.OnlineTotal+1e-9 {
			b.Fatal("global worse than online")
		}
		lastImprovement = res.ImprovementPct
	}
	b.ReportMetric(lastImprovement, "improvement-%")
}

// BenchmarkFig6 regenerates Fig. 6: the Small request scenario, where the
// paper reports the global algorithm's largest gains.
func BenchmarkFig6(b *testing.B) {
	var lastImprovement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if res.GlobalTotal > res.OnlineTotal+1e-9 {
			b.Fatal("global worse than online")
		}
		lastImprovement = res.ImprovementPct
	}
	b.ReportMetric(lastImprovement, "improvement-%")
}

// ---------------------------------------------------------------------------
// Figures 7–8 (MapReduce experiment)
// ---------------------------------------------------------------------------

// BenchmarkFig7 regenerates Fig. 7: WordCount runtime (32 maps, 1 reduce)
// on four equal-capability clusters of increasing distance, balanced
// input. The runtime series must be monotone in distance.
func BenchmarkFig7(b *testing.B) {
	var spreadPenalty float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7and8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for r := 1; r < len(res.Rows); r++ {
			if res.Rows[r-1].RuntimeSec > res.Rows[r].RuntimeSec {
				b.Fatalf("runtime not monotone at %s", res.Rows[r].Topology)
			}
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		spreadPenalty = (last.RuntimeSec - first.RuntimeSec) / first.RuntimeSec * 100
	}
	b.ReportMetric(spreadPenalty, "spread-penalty-%")
}

// BenchmarkFig8 regenerates Fig. 8: the data/shuffle locality counters of
// the same four clusters (skewed-input variant, which reproduces the
// paper's locality-driven runtime inversion).
func BenchmarkFig8(b *testing.B) {
	var inversions float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7and8Skewed(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if inv, _, _ := res.HasInversion(); inv {
			inversions = 1
		}
		// Remote shuffle volume must grow with distance in every run.
		for r := 1; r < len(res.Rows); r++ {
			if res.Rows[r-1].ShuffleRemoteMB > res.Rows[r].ShuffleRemoteMB {
				b.Fatalf("remote shuffle not monotone at %s", res.Rows[r].Topology)
			}
		}
	}
	b.ReportMetric(inversions, "anomaly-present")
}

// ---------------------------------------------------------------------------
// Supplementary experiment
// ---------------------------------------------------------------------------

// BenchmarkExactGap regenerates the heuristic-vs-exact optimality study.
func BenchmarkExactGap(b *testing.B) {
	var hitRate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExactGap(benchSeed, 50)
		if err != nil {
			b.Fatal(err)
		}
		hitRate = float64(res.OptimalHit) / float64(res.Instances) * 100
	}
	b.ReportMetric(hitRate, "optimal-hit-%")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// benchSetup draws a placement instance on the paper plant.
func benchSetup(b *testing.B) (*topology.Topology, [][]int, []model.Request) {
	b.Helper()
	topo := topology.PaperSimPlant()
	sim, err := workload.NewPaperSimulation(benchSeed, workload.Normal)
	if err != nil {
		b.Fatal(err)
	}
	return topo, sim.Capacities, sim.Requests
}

// BenchmarkAblationCenterPolicy compares Algorithm 1's center scan
// (ScanAllCenters, ours) against the paper's random initial center.
func BenchmarkAblationCenterPolicy(b *testing.B) {
	topo, caps, reqs := benchSetup(b)
	b.Run("scan-all", func(b *testing.B) {
		h := &placement.OnlineHeuristic{Policy: placement.ScanAllCenters}
		var total float64
		for i := 0; i < b.N; i++ {
			res, err := placement.PlaceSequential(topo, caps, reqs, h)
			if err != nil {
				b.Fatal(err)
			}
			total = res.Total
		}
		b.ReportMetric(total, "total-distance")
	})
	b.Run("random-center", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			h := &placement.OnlineHeuristic{Policy: placement.RandomCenter, Rand: rand.New(rand.NewSource(int64(i)))}
			res, err := placement.PlaceSequential(topo, caps, reqs, h)
			if err != nil {
				b.Fatal(err)
			}
			total = res.Total
		}
		b.ReportMetric(total, "total-distance")
	})
}

// BenchmarkAblationTransferFixpoint compares Algorithm 2 run for a single
// exchange pass (the paper) against run-to-fixpoint.
func BenchmarkAblationTransferFixpoint(b *testing.B) {
	topo, caps, reqs := benchSetup(b)
	for _, tc := range []struct {
		name   string
		passes int
	}{
		{"single-pass", 1},
		{"fixpoint", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g := &placement.GlobalSubOpt{MaxPasses: tc.passes}
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := g.PlaceBatch(topo, caps, reqs)
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total
			}
			b.ReportMetric(total, "total-distance")
		})
	}
}

// BenchmarkAblationExactSolvers compares the specialized exact SD solver
// (per-center transportation greedy) against the general branch-and-bound
// ILP on the same instance — identical objective values, very different
// cost.
func BenchmarkAblationExactSolvers(b *testing.B) {
	topo, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		b.Fatal(err)
	}
	caps, err := workload.RandomCapacities(benchSeed, topo.Nodes(), 2, workload.DefaultInventoryConfig())
	if err != nil {
		b.Fatal(err)
	}
	req := model.Request{4, 2}
	b.Run("transportation-greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sdexact.SolveSD(topo, caps, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("branch-and-bound-ilp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sdexact.SolveSDMIP(topo, caps, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDelaySched compares the MapReduce scheduler with and
// without delay scheduling on the skewed-input experiment, where locality
// is contended.
func BenchmarkAblationDelaySched(b *testing.B) {
	tops, err := experiments.MRTopologies()
	if err != nil {
		b.Fatal(err)
	}
	mt := tops[1] // the cluster whose locality suffers most under skew
	for _, tc := range []struct {
		name  string
		skips int
	}{
		{"eager", 0},
		{"delay-3", 3},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := experiments.DefaultMRExperimentConfig(benchSeed)
			cfg.SingleWriterInput = true
			cfg.Sim.DelaySkips = tc.skips
			var nonLocal float64
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunMRCluster(mt.Name, mt.Alloc, cfg)
				if err != nil {
					b.Fatal(err)
				}
				nonLocal = float64(row.NonDataLocalMaps)
			}
			b.ReportMetric(nonLocal, "non-local-maps")
		})
	}
}

// BenchmarkAblationGlobalOptimizers compares the paper's Algorithm 2
// exchange local search against simulated annealing on the same batch.
func BenchmarkAblationGlobalOptimizers(b *testing.B) {
	topo, caps, reqs := benchSetup(b)
	b.Run("algorithm2", func(b *testing.B) {
		g := &placement.GlobalSubOpt{}
		var total float64
		for i := 0; i < b.N; i++ {
			res, err := g.PlaceBatch(topo, caps, reqs)
			if err != nil {
				b.Fatal(err)
			}
			total = res.Total
		}
		b.ReportMetric(total, "total-distance")
	})
	b.Run("annealing", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			res, err := anneal.Optimize(topo, caps, reqs, anneal.Options{Seed: benchSeed, Iterations: 20000})
			if err != nil {
				b.Fatal(err)
			}
			total = res.Total
		}
		b.ReportMetric(total, "total-distance")
	})
}

// BenchmarkBaselineComparison regenerates the strategy comparison table.
func BenchmarkBaselineComparison(b *testing.B) {
	var onlineTotal float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.BaselineComparison(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		onlineTotal = res.Rows[0].Total
	}
	b.ReportMetric(onlineTotal, "online-total-distance")
}

// BenchmarkSelectivitySweep regenerates the supplementary sweep: affinity
// benefit as a function of shuffle selectivity.
func BenchmarkSelectivitySweep(b *testing.B) {
	var heavyBenefit float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.SelectivitySweep(benchSeed, []float64{0.01, 0.5, 1.5})
		if err != nil {
			b.Fatal(err)
		}
		heavyBenefit = res.Rows[len(res.Rows)-1].SpeedupPct
	}
	b.ReportMetric(heavyBenefit, "heavy-speedup-%")
}

// BenchmarkAblationMigration compares the operating cloud with and
// without affinity-aware live migration on a contended workload.
func BenchmarkAblationMigration(b *testing.B) {
	topo := topology.PaperSimPlant()
	reqs, err := workload.RandomRequests(benchSeed, 40, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		b.Fatal(err)
	}
	arrivals := workload.DefaultArrivalConfig()
	arrivals.MeanInterarrival = 5
	arrivals.MeanHold = 300
	timed, err := workload.TimedRequests(benchSeed+1, reqs, arrivals)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		migrate bool
	}{
		{"placement-only", false},
		{"with-migration", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				caps, err := workload.RandomCapacities(benchSeed, topo.Nodes(), 3, workload.InventoryConfig{MaxPerType: 1})
				if err != nil {
					b.Fatal(err)
				}
				inv, err := inventory.NewFromMatrix(caps)
				if err != nil {
					b.Fatal(err)
				}
				sim, err := cloudsim.New(topo, inv, &placement.OnlineHeuristic{}, cloudsim.Config{Migrate: tc.migrate})
				if err != nil {
					b.Fatal(err)
				}
				m, err := sim.Run(timed)
				if err != nil {
					b.Fatal(err)
				}
				final = m.FinalDistanceSum
			}
			b.ReportMetric(final, "final-distance")
		})
	}
}

// BenchmarkAblationJointopt compares DC-oriented and shuffle-oriented
// placement objectives by the pairwise affinity of the cluster each
// produces for the same request.
func BenchmarkAblationJointopt(b *testing.B) {
	topo, err := topology.Uniform(1, 4, 4, topology.DefaultDistances())
	if err != nil {
		b.Fatal(err)
	}
	caps, err := workload.RandomCapacities(benchSeed, topo.Nodes(), 1, workload.InventoryConfig{MaxPerType: 3})
	if err != nil {
		b.Fatal(err)
	}
	req := model.Request{8}
	for _, tc := range []struct {
		name string
		w    float64
	}{
		{"dc-oriented", 0},
		{"shuffle-oriented", 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := &jointopt.Placer{Profile: jointopt.Profile{ShuffleWeight: tc.w}}
			var aff float64
			for i := 0; i < b.N; i++ {
				alloc, err := p.Place(topo, caps, req)
				if err != nil {
					b.Fatal(err)
				}
				aff = alloc.PairwiseAffinity(topo)
			}
			b.ReportMetric(aff, "pairwise-affinity")
		})
	}
}

// BenchmarkAblationSpeculation compares straggler-afflicted WordCount
// with and without speculative execution.
func BenchmarkAblationSpeculation(b *testing.B) {
	tops, err := experiments.MRTopologies()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		spec bool
	}{
		{"no-speculation", false},
		{"speculation", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := experiments.DefaultMRExperimentConfig(benchSeed)
			cfg.Sim.StragglerProb = 0.2
			cfg.Sim.StragglerFactor = 8
			cfg.Sim.Speculative = tc.spec
			cfg.Sim.Seed = benchSeed
			var runtime float64
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunMRCluster(tops[0].Name, tops[0].Alloc, cfg)
				if err != nil {
					b.Fatal(err)
				}
				runtime = row.RuntimeSec
			}
			b.ReportMetric(runtime, "runtime-s")
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths
// ---------------------------------------------------------------------------

// BenchmarkPlaceScale measures one Algorithm 1 placement on plants from
// the paper's 1×3×10 up to a 100×100×100 (1 000 000-node) datacenter,
// comparing the tier-aggregated center scan (pruned, the default) against
// the exhaustive-center reference path. Both arms return bit-identical
// allocations; only the scan cost differs — O(clouds + surviving racks)
// versus O(n) builds. The request is sized to exercise the center scan
// rather than the single-node fast path.
//
// At the million-node size the exhaustive arm is skipped (hours per op)
// and the pruned arm runs against a persistent tier index through
// PlaceSparse — the steady-state form the simulators use — because a
// dense Place would spend its time allocating and rebuilding the 3M-cell
// aggregate per request instead of placing.
func BenchmarkPlaceScale(b *testing.B) {
	for _, tc := range []struct {
		name                        string
		clouds, racks, nodesPerRack int
	}{
		{"1x3x10", 1, 3, 10},
		{"2x20x20", 2, 20, 20},
		{"10x40x40", 10, 40, 40},
		{"100x100x100", 100, 100, 100},
	} {
		if tc.clouds*tc.racks*tc.nodesPerRack >= 10000 && testing.Short() {
			continue // the 16 000-node and larger plants are too heavy for -short runs
		}
		topo, err := topology.Uniform(tc.clouds, tc.racks, tc.nodesPerRack, topology.DefaultDistances())
		if err != nil {
			b.Fatal(err)
		}
		huge := topo.Nodes() >= 100000
		const types = 3
		caps, err := workload.RandomCapacities(benchSeed, topo.Nodes(), types, workload.DefaultInventoryConfig())
		if err != nil {
			b.Fatal(err)
		}
		req := make(model.Request, types)
		for j := range req {
			req[j] = tc.nodesPerRack // ≈ 1.5 racks' worth across the types
		}
		for _, arm := range []struct {
			name   string
			policy placement.CenterPolicy
		}{
			{"pruned", placement.ScanAllCenters},
			{"exhaustive", placement.ExhaustiveCenters},
		} {
			if huge && arm.policy == placement.ExhaustiveCenters {
				continue // O(n) center builds at 1M nodes: hours per op
			}
			b.Run(fmt.Sprintf("%s/%s", tc.name, arm.name), func(b *testing.B) {
				h := &placement.OnlineHeuristic{Policy: arm.policy}
				if huge {
					idx, err := affinity.NewTierIndex(topo, caps)
					if err != nil {
						b.Fatal(err)
					}
					var sp affinity.SparseAlloc
					if _, _, err := h.PlaceSparse(idx, req, &sp); err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, _, err := h.PlaceSparse(idx, req, &sp); err != nil {
							b.Fatal(err)
						}
					}
					return
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := h.Place(topo, caps, req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOnlinePlace measures a single Algorithm 1 placement on the
// paper plant.
func BenchmarkOnlinePlace(b *testing.B) {
	topo, caps, reqs := benchSetup(b)
	h := &placement.OnlineHeuristic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Place(topo, caps, reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSD measures the exact solver on the paper plant.
func BenchmarkExactSD(b *testing.B) {
	topo, caps, reqs := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sdexact.SolveSD(topo, caps, reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplex measures the LP substrate on a transportation-shaped
// instance of growing size.
func BenchmarkSimplex(b *testing.B) {
	for _, n := range []int{5, 10, 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(benchSeed))
			build := func() *lp.Problem {
				p := lp.NewProblem(n * n)
				obj := make([]float64, n*n)
				for i := range obj {
					obj[i] = float64(1 + rng.Intn(9))
				}
				if err := p.SetObjective(obj); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					vars := make([]int, n)
					coef := make([]float64, n)
					for j := 0; j < n; j++ {
						vars[j] = i*n + j
						coef[j] = 1
					}
					if err := p.AddSparseConstraint(vars, coef, lp.LE, float64(5+rng.Intn(5))); err != nil {
						b.Fatal(err)
					}
				}
				for j := 0; j < n; j++ {
					vars := make([]int, n)
					coef := make([]float64, n)
					for i := 0; i < n; i++ {
						vars[i] = i*n + j
						coef[i] = 1
					}
					if err := p.AddSparseConstraint(vars, coef, lp.EQ, 2); err != nil {
						b.Fatal(err)
					}
				}
				return p
			}
			prob := build()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := prob.Solve()
				if err != nil || s.Status != lp.Optimal {
					b.Fatalf("status %v err %v", s.Status, err)
				}
			}
		})
	}
}

// BenchmarkMapReduceWordCount measures one full simulated WordCount run.
func BenchmarkMapReduceWordCount(b *testing.B) {
	tops, err := experiments.MRTopologies()
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.DefaultMRExperimentConfig(benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMRCluster(tops[0].Name, tops[0].Alloc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
