package bench

import (
	"math/rand"
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/topology"
)

// distanceWalk pre-generates a deterministic single-VM move walk on the
// paper plant so the scratch and incremental benchmarks replay exactly
// the same work: the i-th step moves one VM from moves[i][0] to
// moves[i][1] and then needs the new DC(C).
func distanceWalk(b *testing.B) (*topology.Topology, affinity.Allocation, [][2]topology.NodeID) {
	b.Helper()
	topo := topology.PaperSimPlant()
	n := topo.Nodes()
	rng := rand.New(rand.NewSource(benchSeed))
	start := affinity.NewAllocation(n, 1)
	for v := 0; v < 40; v++ {
		start.Add(topology.NodeID(rng.Intn(n)), 0)
	}
	const steps = 512
	moves := make([][2]topology.NodeID, 0, steps)
	sim := start.Clone()
	for len(moves) < steps {
		hosts := sim.HostingNodes()
		p := hosts[rng.Intn(len(hosts))]
		q := topology.NodeID(rng.Intn(n))
		if q == p {
			continue
		}
		sim.Remove(p, 0)
		sim.Add(q, 0)
		moves = append(moves, [2]topology.NodeID{p, q})
	}
	return topo, start, moves
}

// BenchmarkDistanceScratch prices the walk the way the optimizers did
// before this change: mutate, then recompute DC(C) from scratch.
func BenchmarkDistanceScratch(b *testing.B) {
	topo, start, moves := distanceWalk(b)
	var sum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := start.Clone()
		sum = 0
		for _, mv := range moves {
			a.Remove(mv[0], 0)
			a.Add(mv[1], 0)
			d, _ := a.Distance(topo)
			sum += d
		}
	}
	b.ReportMetric(sum/float64(len(moves)), "mean-DC")
}

// BenchmarkDistanceIncremental prices the same walk through the
// DistanceEvaluator: preview in O(hosts), then materialize. The mean-DC
// metric must match BenchmarkDistanceScratch exactly.
func BenchmarkDistanceIncremental(b *testing.B) {
	topo, start, moves := distanceWalk(b)
	var sum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := affinity.NewDistanceEvaluator(topo, start)
		sum = 0
		for _, mv := range moves {
			d, _ := ev.MovePreview(mv[0], mv[1])
			ev.Move(mv[0], mv[1])
			sum += d
		}
	}
	b.ReportMetric(sum/float64(len(moves)), "mean-DC")
}

// TestDistanceBenchmarksAgree pins the two benchmark arms to the same
// answer outside of -bench runs: the incremental evaluator must report
// the identical DC(C) at every step of the shared walk.
func TestDistanceBenchmarksAgree(t *testing.T) {
	topo := topology.PaperSimPlant()
	n := topo.Nodes()
	rng := rand.New(rand.NewSource(benchSeed))
	a := affinity.NewAllocation(n, 1)
	for v := 0; v < 40; v++ {
		a.Add(topology.NodeID(rng.Intn(n)), 0)
	}
	ev := affinity.NewDistanceEvaluator(topo, a)
	for step := 0; step < 512; step++ {
		hosts := a.HostingNodes()
		p := hosts[rng.Intn(len(hosts))]
		q := topology.NodeID(rng.Intn(n))
		if q == p {
			continue
		}
		prev, _ := ev.MovePreview(p, q)
		a.Remove(p, 0)
		a.Add(q, 0)
		ev.Move(p, q)
		want, wantK := a.Distance(topo)
		got, gotK := ev.Distance()
		if got != want || gotK != wantK || prev != want {
			t.Fatalf("step %d: incremental (%v, %d) preview %v, scratch (%v, %d)",
				step, got, gotK, prev, want, wantK)
		}
	}
}
