module affinitycluster

go 1.22
