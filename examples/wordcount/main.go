// Wordcount: provision two virtual clusters of identical capability —
// one affinity-aware, one randomly striped — and run a simulated Hadoop
// WordCount (32 map tasks, 1 reduce task, as in the paper's experiment)
// on each, comparing runtime and locality.
package main

import (
	"fmt"
	"log"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/dfs"
	"affinitycluster/internal/eventsim"
	"affinitycluster/internal/mapreduce"
	"affinitycluster/internal/model"
	"affinitycluster/internal/netmodel"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/vcluster"
)

func main() {
	topo, err := topology.Uniform(1, 4, 4, topology.DefaultDistances())
	if err != nil {
		log.Fatal(err)
	}
	// Every node offers two small VMs; we request eight.
	caps := make([][]int, topo.Nodes())
	for i := range caps {
		caps[i] = []int{2}
	}
	req := model.Request{8}

	affine, err := (&placement.OnlineHeuristic{}).Place(topo, caps, req)
	if err != nil {
		log.Fatal(err)
	}
	striped, err := placement.RoundRobinStripe{}.Place(topo, caps, req)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name  string
		alloc affinity.Allocation
	}{
		{"affinity-aware", affine},
		{"round-robin", striped},
	} {
		counters, dist, err := runWordCount(topo, tc.alloc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s distance %5.1f  runtime %6.1fs  non-local maps %2d/%d  remote shuffle %6.1f MB\n",
			tc.name, dist, counters.Runtime,
			counters.NonDataLocalMaps(), counters.MapsTotal, counters.ShuffleRemoteMB)
	}
}

func runWordCount(topo *topology.Topology, alloc affinity.Allocation) (*mapreduce.Counters, float64, error) {
	cluster, err := vcluster.FromAllocation(topo, alloc)
	if err != nil {
		return nil, 0, err
	}
	engine := eventsim.New()
	netCfg := netmodel.DefaultConfig()
	netCfg.RackUplinkMBps = 80 // oversubscribed, like the paper's era
	net, err := netmodel.NewFlowSim(engine, topo, netCfg)
	if err != nil {
		return nil, 0, err
	}
	fsys, err := dfs.New(cluster, dfs.DefaultConfig())
	if err != nil {
		return nil, 0, err
	}
	if _, err := fsys.WriteRotating("input", 32*64); err != nil { // 32 blocks → 32 maps
		return nil, 0, err
	}
	sim, err := mapreduce.New(engine, net, cluster, fsys, mapreduce.DefaultSimConfig())
	if err != nil {
		return nil, 0, err
	}
	counters, err := sim.Run(mapreduce.WordCount("input"))
	if err != nil {
		return nil, 0, err
	}
	return counters, cluster.PairwiseDistance(), nil
}
