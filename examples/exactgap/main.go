// Exactgap: quantify the optimality gap of the paper's heuristics against
// the exact solvers — Algorithm 1 vs the SD optimum (solved both by the
// specialized transportation argument and by the general branch-and-bound
// ILP), and Algorithm 2 vs the exact GSD optimum on small batches.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"affinitycluster/internal/experiments"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/sdexact"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func main() {
	// Part 1: Algorithm 1 vs the exact SD optimum over random instances.
	gap, err := experiments.ExactGap(1, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("[Algorithm 1 vs exact SD]\n" + gap.Render() + "\n")

	// Part 2: cross-check the two exact solvers on a small instance.
	topo, err := topology.Uniform(1, 2, 3, topology.DefaultDistances())
	if err != nil {
		log.Fatal(err)
	}
	caps, err := workload.RandomCapacities(3, topo.Nodes(), 2, workload.DefaultInventoryConfig())
	if err != nil {
		log.Fatal(err)
	}
	req := model.Request{4, 2}
	fast, err := sdexact.SolveSD(topo, caps, req)
	if err != nil {
		log.Fatal(err)
	}
	slow, err := sdexact.SolveSDMIP(topo, caps, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[exact solver cross-check] greedy-transportation: %.1f, branch-and-bound ILP: %.1f\n\n",
		fast.Distance, slow.Distance)

	// Part 3: Algorithm 2 vs the exact GSD optimum on small batches.
	rng := rand.New(rand.NewSource(5))
	var heurTotal, optTotal float64
	batches := 0
	for batches < 25 {
		caps, err := workload.RandomCapacities(rng.Int63(), topo.Nodes(), 1, workload.DefaultInventoryConfig())
		if err != nil {
			log.Fatal(err)
		}
		reqs := []model.Request{
			{1 + rng.Intn(3)},
			{1 + rng.Intn(3)},
			{1 + rng.Intn(2)},
		}
		exact, err := sdexact.SolveGSD(topo, caps, reqs, sdexact.GSDOptions{})
		if err != nil {
			if errors.Is(err, sdexact.ErrInfeasible) {
				continue
			}
			log.Fatal(err)
		}
		g := &placement.GlobalSubOpt{}
		res, err := g.PlaceBatch(topo, caps, reqs)
		if err != nil {
			log.Fatal(err)
		}
		if res.Failed > 0 {
			continue
		}
		heurTotal += res.Total
		optTotal += exact.Total
		batches++
	}
	gapPct := 0.0
	if optTotal > 0 {
		gapPct = (heurTotal - optTotal) / optTotal * 100
	}
	fmt.Printf("[Algorithm 2 vs exact GSD] %d batches: heuristic total %.1f vs optimal %.1f (gap %.1f%%)\n",
		batches, heurTotal, optTotal, gapPct)
}
