// Batchqueue: simulate a cloud serving a random stream of virtual-cluster
// requests over several hours, comparing per-request online placement
// against batch service with the global sub-optimization algorithm, and
// against an affinity-blind baseline.
package main

import (
	"fmt"
	"log"

	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/stats"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func main() {
	topo := topology.PaperSimPlant()
	reqs, err := workload.RandomRequests(7, 60, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		log.Fatal(err)
	}
	arrivals := workload.DefaultArrivalConfig()
	arrivals.MeanInterarrival = 20 // keep the plant busy so queueing happens
	timed, err := workload.TimedRequests(8, reqs, arrivals)
	if err != nil {
		log.Fatal(err)
	}

	type arm struct {
		name   string
		placer placement.Placer
		cfg    cloudsim.Config
	}
	// RetainSamples: the report reads the exact Distances/Waits samples —
	// fine at 60 requests (soak-scale runs use the streaming sketches).
	retained := cloudsim.Config{RetainSamples: true}
	arms := []arm{
		{"online (per request)", &placement.OnlineHeuristic{}, retained},
		{"global (batched)", &placement.OnlineHeuristic{}, cloudsim.Config{Batch: true, RetainSamples: true}},
		{"first-fit baseline", placement.FirstFit{}, retained},
		{"round-robin baseline", placement.RoundRobinStripe{}, retained},
	}

	fmt.Printf("%-22s %7s %9s %9s %9s %7s\n", "strategy", "served", "meanDist", "meanWait", "util", "queue")
	for _, a := range arms {
		caps, err := workload.RandomCapacities(9, topo.Nodes(), 3, workload.DefaultInventoryConfig())
		if err != nil {
			log.Fatal(err)
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := cloudsim.New(topo, inv, a.placer, a.cfg)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sim.Run(timed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %7d %9.2f %9.1f %8.1f%% %7d\n",
			a.name, m.Served, stats.Mean(m.Distances), stats.Mean(m.Waits),
			m.UtilizationAvg*100, m.Unplaced)
	}
}
