// Quickstart: build a cloud, provision an affinity-aware virtual cluster
// for a MapReduce-style request, inspect its distance and central node,
// and release it.
package main

import (
	"fmt"
	"log"

	"affinitycluster/internal/core"
	"affinitycluster/internal/model"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func main() {
	// A cloud shaped like the paper's simulation: 3 racks × 10 nodes,
	// offering the Table-I instance types (small, medium, large).
	topo := topology.PaperSimPlant()
	caps, err := workload.RandomCapacities(42, topo.Nodes(), 3, workload.DefaultInventoryConfig())
	if err != nil {
		log.Fatal(err)
	}

	prov, err := core.NewProvisioner(topo, caps, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Request the paper's running example: two small, four medium, one
	// large instance.
	req := model.Request{2, 4, 1}
	fmt.Printf("requesting %d VMs: %v (availability %v)\n", req.TotalVMs(), req, prov.Available())

	vc, err := prov.Provision(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioned cluster: distance %.1f, central node %d, pairwise affinity %.1f\n",
		vc.Distance, vc.Center, vc.PairwiseAffinity())
	for _, node := range vc.Alloc.HostingNodes() {
		fmt.Printf("  node %2d (rack %d): %v\n", node, topo.RackOf(node), vc.Alloc[node])
	}

	// Compare against the provable optimum without committing anything.
	_, exact, err := prov.SolveExact(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact SD optimum for the same request under current load: %.1f\n", exact)

	if err := vc.Release(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released; availability restored to %v\n", prov.Available())
}
