// Migration: run a busy cloud twice — with and without affinity-aware
// live migration — and compare how tight the running clusters stay as
// earlier tenants depart and free up attractive capacity.
package main

import (
	"fmt"
	"log"

	"affinitycluster/internal/cloudsim"
	"affinitycluster/internal/inventory"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func main() {
	topo := topology.PaperSimPlant()
	reqs, err := workload.RandomRequests(21, 40, 3, workload.Normal, workload.DefaultRequestConfig())
	if err != nil {
		log.Fatal(err)
	}
	arrivals := workload.DefaultArrivalConfig()
	arrivals.MeanInterarrival = 5 // heavy load: clusters overlap and fragment
	arrivals.MeanHold = 300
	timed, err := workload.TimedRequests(22, reqs, arrivals)
	if err != nil {
		log.Fatal(err)
	}

	// Fine-grained capacity (≤1 instance of each type per node) forces
	// clusters to span nodes, leaving room for migration to tighten them.
	invCfg := workload.InventoryConfig{MaxPerType: 1}
	for _, migrate := range []bool{false, true} {
		caps, err := workload.RandomCapacities(23, topo.Nodes(), 3, invCfg)
		if err != nil {
			log.Fatal(err)
		}
		inv, err := inventory.NewFromMatrix(caps)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := cloudsim.New(topo, inv, &placement.OnlineHeuristic{}, cloudsim.Config{Migrate: migrate})
		if err != nil {
			log.Fatal(err)
		}
		m, err := sim.Run(timed)
		if err != nil {
			log.Fatal(err)
		}
		mode := "placement only "
		if migrate {
			mode = "with migration"
		}
		fmt.Printf("%s  served %d  distance at placement %6.1f  at departure %6.1f  (%d moves, %.1f GB traffic, gain %.1f)\n",
			mode, m.Served, m.TotalDistance, m.FinalDistanceSum,
			m.Migrations, m.MigrationMB/1024, m.MigrationGain)
	}
}
