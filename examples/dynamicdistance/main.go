// Dynamicdistance: measure node-to-node latency with noisy probes, infer
// the rack/cloud hierarchy and distance tiers from the measurements, and
// place a virtual cluster on the *inferred* topology — then handle a node
// failure by filtering its capacity out. This exercises the paper's
// future-work item on computing distances dynamically.
package main

import (
	"fmt"
	"log"

	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/probing"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

func main() {
	// Ground truth the operator cannot see directly: 2 clouds × 2 racks.
	truth, err := topology.Uniform(2, 2, 4, topology.DefaultDistances())
	if err != nil {
		log.Fatal(err)
	}

	// Probe campaign with ±15% latency noise.
	sampler, err := probing.NewSampler(truth, 42, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	est, err := probing.NewEstimator(truth.Nodes(), probing.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := sampler.Campaign(est, 8); err != nil {
		log.Fatal(err)
	}
	inferred, err := est.InferTopology()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred: %d nodes, %d racks, %d clouds (truth: %d racks, %d clouds)\n",
		inferred.Nodes(), inferred.Racks(), inferred.Clouds(), truth.Racks(), truth.Clouds())
	d := inferred.Distances()
	fmt.Printf("inferred tiers: same-rack %.3f, cross-rack %.3f, cross-cloud %.3f\n",
		d.SameRack, d.CrossRack, d.CrossCloud)

	// Place on the measured topology.
	caps, err := workload.RandomCapacities(7, truth.Nodes(), 2, workload.DefaultInventoryConfig())
	if err != nil {
		log.Fatal(err)
	}
	req := model.Request{4, 2}
	h := &placement.OnlineHeuristic{}
	alloc, err := h.Place(inferred, caps, req)
	if err != nil {
		log.Fatal(err)
	}
	dist, center := alloc.Distance(inferred)
	fmt.Printf("placed %v: measured distance %.3f, central node %d\n", req, dist, center)

	// A node fails; probes to it time out; capacity is filtered.
	failed := alloc.HostingNodes()[0]
	sampler.SetDown(failed, true)
	if err := sampler.Campaign(est, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d failed; detector says down=%v\n", failed, est.IsDown(failed))
	safeCaps, err := est.FilterCapacities(caps)
	if err != nil {
		log.Fatal(err)
	}
	realloc, err := h.Place(inferred, safeCaps, req)
	if err != nil {
		log.Fatal(err)
	}
	if realloc.VMsOnNode(failed) != 0 {
		log.Fatalf("replacement cluster still uses the failed node")
	}
	dist2, _ := realloc.Distance(inferred)
	fmt.Printf("replacement cluster avoids node %d: distance %.3f\n", failed, dist2)
}
