// Elastic-resize benchmarks: the cost of growing a live cluster by k
// VMs through PlaceDeltaSparse against a populated plant with the
// persistent tier index attached — the mid-job resize hot path. Each op
// places the delta near the cluster's current center and immediately
// releases it, so the plant stays in steady state and the figure is the
// pure grow cost. BenchmarkPlaceDelta feeds BENCH_elastic.json
// (make bench-elastic).
package bench

import (
	"testing"

	"affinitycluster/internal/affinity"
	"affinitycluster/internal/model"
	"affinitycluster/internal/placement"
	"affinitycluster/internal/topology"
	"affinitycluster/internal/workload"
)

// BenchmarkPlaceDelta measures grow-by-k against the 16k-node and
// million-node plants at 60% utilization. The grow target is one of the
// prefilled clusters; k counts VMs spread over the plant's three types.
func BenchmarkPlaceDelta(b *testing.B) {
	if testing.Short() {
		b.Skip("delta plants are too heavy for -short runs")
	}
	const types = 3
	run := func(name string, clouds, racks, nodesPerRack, k int) {
		b.Run(name, func(b *testing.B) {
			topo, err := topology.Uniform(clouds, racks, nodesPerRack, topology.DefaultDistances())
			if err != nil {
				b.Fatal(err)
			}
			caps, err := workload.RandomCapacities(benchSeed, topo.Nodes(), types, workload.DefaultInventoryConfig())
			if err != nil {
				b.Fatal(err)
			}
			ring := fillChurnRing(b, topo, caps, nodesPerRack, 60, benchSeed)
			cur := ring.ents[0]
			delta := make(model.Request, types)
			for j := 0; j < k; j++ {
				delta[j%types]++
			}
			var sp affinity.SparseAlloc
			h := &placement.OnlineHeuristic{Policy: placement.ScanAllCenters}
			// One warm op sizes sp and the scan pools so the timed loop
			// reports the allocation-free steady state.
			if _, _, err := h.PlaceDeltaSparse(ring.idx, cur, delta, &sp); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := h.PlaceDeltaSparse(ring.idx, cur, delta, &sp); err != nil {
					b.Fatal(err)
				}
				if err := ring.inv.AllocateList(sp.Entries); err != nil {
					b.Fatal(err)
				}
				if err := ring.inv.ReleaseList(sp.Entries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("grow-by-3/10x40x40/util60", 10, 40, 40, 3)
	run("grow-by-12/10x40x40/util60", 10, 40, 40, 12)
	run("grow-by-3/100x100x100/util60", 100, 100, 100, 3)
	run("grow-by-12/100x100x100/util60", 100, 100, 100, 12)
}
